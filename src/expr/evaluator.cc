#include "expr/evaluator.h"

#include "common/string_util.h"

namespace cosmos {

std::optional<size_t> ResolveColumn(const Schema& schema,
                                    const ColumnRefExpr& col) {
  if (!col.qualifier().empty()) {
    // Composite schemas qualify names ("O.itemID").
    if (auto idx = schema.IndexOf(col.FullName())) return idx;
    // A reference qualified by the stream itself resolves to the bare name.
    if (col.qualifier() == schema.stream_name()) {
      if (auto idx = schema.IndexOf(col.name())) return idx;
    }
    return std::nullopt;
  }
  if (auto idx = schema.IndexOf(col.name())) return idx;
  return std::nullopt;
}

namespace {

Result<Value> CompareValues(CompareOp op, const Value& a, const Value& b) {
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    // Equality tolerates incomparable types by answering "not equal".
    auto cmp = a.Compare(b);
    bool eq = cmp.ok() && *cmp == 0;
    return Value(op == CompareOp::kEq ? eq : !eq);
  }
  COSMOS_ASSIGN_OR_RETURN(int c, a.Compare(b));
  switch (op) {
    case CompareOp::kLt:
      return Value(c < 0);
    case CompareOp::kLe:
      return Value(c <= 0);
    case CompareOp::kGt:
      return Value(c > 0);
    case CompareOp::kGe:
      return Value(c >= 0);
    default:
      return Status::Internal("unreachable compare op");
  }
}

Result<Value> ApplyArith(ArithOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  // Preserve int64 arithmetic when both sides are integers (timestamps!).
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    int64_t x = a.AsInt64();
    int64_t y = b.AsInt64();
    switch (op) {
      case ArithOp::kAdd:
        return Value(x + y);
      case ArithOp::kSub:
        return Value(x - y);
      case ArithOp::kMul:
        return Value(x * y);
      case ArithOp::kDiv:
        if (y == 0) return Status::InvalidArgument("division by zero");
        return Value(x / y);
    }
  }
  double x = a.NumericValue();
  double y = b.NumericValue();
  switch (op) {
    case ArithOp::kAdd:
      return Value(x + y);
    case ArithOp::kSub:
      return Value(x - y);
    case ArithOp::kMul:
      return Value(x * y);
    case ArithOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value(x / y);
  }
  return Status::Internal("unreachable arith op");
}

}  // namespace

Result<Value> EvalExpr(const ExprPtr& expr, const Tuple& tuple) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(*expr).value();
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(*expr);
      auto idx = ResolveColumn(*tuple.schema(), col);
      if (!idx.has_value()) {
        return Status::NotFound(
            StrFormat("column '%s' not found in schema '%s'",
                      col.FullName().c_str(),
                      tuple.schema()->stream_name().c_str()));
      }
      return tuple.value(*idx);
    }
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      COSMOS_ASSIGN_OR_RETURN(Value lhs, EvalExpr(c.lhs(), tuple));
      COSMOS_ASSIGN_OR_RETURN(Value rhs, EvalExpr(c.rhs(), tuple));
      return CompareValues(c.op(), lhs, rhs);
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(*expr);
      if (l.op() == LogicalOp::kNot) {
        COSMOS_ASSIGN_OR_RETURN(Value v, EvalExpr(l.children()[0], tuple));
        if (v.type() != ValueType::kBool) {
          return Status::InvalidArgument("NOT of non-boolean");
        }
        return Value(!v.AsBool());
      }
      bool is_and = l.op() == LogicalOp::kAnd;
      for (const auto& child : l.children()) {
        COSMOS_ASSIGN_OR_RETURN(Value v, EvalExpr(child, tuple));
        if (v.type() != ValueType::kBool) {
          return Status::InvalidArgument("logical op over non-boolean");
        }
        if (is_and && !v.AsBool()) return Value(false);
        if (!is_and && v.AsBool()) return Value(true);
      }
      return Value(is_and);
    }
    case ExprKind::kArithmetic: {
      const auto& a = static_cast<const ArithmeticExpr&>(*expr);
      COSMOS_ASSIGN_OR_RETURN(Value lhs, EvalExpr(a.lhs(), tuple));
      COSMOS_ASSIGN_OR_RETURN(Value rhs, EvalExpr(a.rhs(), tuple));
      return ApplyArith(a.op(), lhs, rhs);
    }
  }
  return Status::Internal("unreachable expr kind");
}

Result<bool> EvalPredicate(const ExprPtr& expr, const Tuple& tuple) {
  if (expr == nullptr) return true;
  COSMOS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, tuple));
  if (v.type() != ValueType::kBool) {
    return Status::InvalidArgument("predicate did not evaluate to boolean");
  }
  return v.AsBool();
}

// ---- BoundPredicate ----

struct BoundPredicate::Node {
  ExprKind kind;
  // kLiteral
  Value literal;
  // kColumnRef
  size_t column_index = 0;
  // kComparison / kArithmetic / kLogical
  CompareOp cmp_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  LogicalOp logical_op = LogicalOp::kAnd;
  std::vector<std::shared_ptr<const Node>> children;
};

namespace {

Result<std::shared_ptr<const BoundPredicate::Node>> BindNode(
    const ExprPtr& expr, const Schema& schema);

}  // namespace

Result<BoundPredicate> BoundPredicate::Bind(const ExprPtr& expr,
                                            const Schema& schema) {
  BoundPredicate bp;
  bp.expr_ = expr;
  if (expr == nullptr) return bp;
  COSMOS_ASSIGN_OR_RETURN(bp.root_, BindNode(expr, schema));
  return bp;
}

namespace {

Result<std::shared_ptr<const BoundPredicate::Node>> BindNode(
    const ExprPtr& expr, const Schema& schema) {
  auto node = std::make_shared<BoundPredicate::Node>();
  node->kind = expr->kind();
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      node->literal = static_cast<const LiteralExpr&>(*expr).value();
      break;
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(*expr);
      auto idx = ResolveColumn(schema, col);
      if (!idx.has_value()) {
        return Status::NotFound(StrFormat(
            "column '%s' not found in schema '%s'", col.FullName().c_str(),
            schema.stream_name().c_str()));
      }
      node->column_index = *idx;
      break;
    }
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      node->cmp_op = c.op();
      COSMOS_ASSIGN_OR_RETURN(auto l, BindNode(c.lhs(), schema));
      COSMOS_ASSIGN_OR_RETURN(auto r, BindNode(c.rhs(), schema));
      node->children = {std::move(l), std::move(r)};
      break;
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(*expr);
      node->logical_op = l.op();
      for (const auto& child : l.children()) {
        COSMOS_ASSIGN_OR_RETURN(auto b, BindNode(child, schema));
        node->children.push_back(std::move(b));
      }
      break;
    }
    case ExprKind::kArithmetic: {
      const auto& a = static_cast<const ArithmeticExpr&>(*expr);
      node->arith_op = a.op();
      COSMOS_ASSIGN_OR_RETURN(auto l, BindNode(a.lhs(), schema));
      COSMOS_ASSIGN_OR_RETURN(auto r, BindNode(a.rhs(), schema));
      node->children = {std::move(l), std::move(r)};
      break;
    }
  }
  return std::shared_ptr<const BoundPredicate::Node>(std::move(node));
}

// Evaluates a bound node; a type error is reported through `ok`.
Value EvalBound(const BoundPredicate::Node& node, const Tuple& tuple,
                bool* ok) {
  switch (node.kind) {
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kColumnRef:
      if (node.column_index >= tuple.num_values()) {
        *ok = false;
        return Value();
      }
      return tuple.value(node.column_index);
    case ExprKind::kComparison: {
      Value l = EvalBound(*node.children[0], tuple, ok);
      Value r = EvalBound(*node.children[1], tuple, ok);
      if (!*ok) return Value();
      auto res = CompareValues(node.cmp_op, l, r);
      if (!res.ok()) {
        *ok = false;
        return Value();
      }
      return *res;
    }
    case ExprKind::kLogical: {
      if (node.logical_op == LogicalOp::kNot) {
        Value v = EvalBound(*node.children[0], tuple, ok);
        if (!*ok || v.type() != ValueType::kBool) {
          *ok = false;
          return Value();
        }
        return Value(!v.AsBool());
      }
      bool is_and = node.logical_op == LogicalOp::kAnd;
      for (const auto& child : node.children) {
        Value v = EvalBound(*child, tuple, ok);
        if (!*ok || v.type() != ValueType::kBool) {
          *ok = false;
          return Value();
        }
        if (is_and && !v.AsBool()) return Value(false);
        if (!is_and && v.AsBool()) return Value(true);
      }
      return Value(is_and);
    }
    case ExprKind::kArithmetic: {
      Value l = EvalBound(*node.children[0], tuple, ok);
      Value r = EvalBound(*node.children[1], tuple, ok);
      if (!*ok) return Value();
      auto res = ApplyArith(node.arith_op, l, r);
      if (!res.ok()) {
        *ok = false;
        return Value();
      }
      return *res;
    }
  }
  *ok = false;
  return Value();
}

}  // namespace

bool BoundPredicate::Matches(const Tuple& tuple) const {
  if (root_ == nullptr) return true;
  bool ok = true;
  Value v = EvalBound(*root_, tuple, &ok);
  if (!ok || v.type() != ValueType::kBool) return false;
  return v.AsBool();
}

}  // namespace cosmos
