#include "expr/expression.h"

namespace cosmos {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

bool LiteralExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kLiteral) return false;
  return value_ == static_cast<const LiteralExpr&>(other).value_;
}

std::string ColumnRefExpr::FullName() const {
  if (qualifier_.empty()) return name_;
  return qualifier_ + "." + name_;
}

bool ColumnRefExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kColumnRef) return false;
  const auto& o = static_cast<const ColumnRefExpr&>(other);
  return qualifier_ == o.qualifier_ && name_ == o.name_;
}

std::string ComparisonExpr::ToString() const {
  return lhs_->ToString() + " " + CompareOpToString(op_) + " " +
         rhs_->ToString();
}

bool ComparisonExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kComparison) return false;
  const auto& o = static_cast<const ComparisonExpr&>(other);
  return op_ == o.op_ && lhs_->Equals(*o.lhs_) && rhs_->Equals(*o.rhs_);
}

std::string LogicalExpr::ToString() const {
  if (op_ == LogicalOp::kNot) {
    return "NOT (" + children_[0]->ToString() + ")";
  }
  const char* sep = (op_ == LogicalOp::kAnd) ? " AND " : " OR ";
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    out += children_[i]->ToString();
  }
  out += ")";
  return out;
}

bool LogicalExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kLogical) return false;
  const auto& o = static_cast<const LogicalExpr&>(other);
  if (op_ != o.op_ || children_.size() != o.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*o.children_[i])) return false;
  }
  return true;
}

std::string ArithmeticExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case ArithOp::kAdd:
      op = "+";
      break;
    case ArithOp::kSub:
      op = "-";
      break;
    case ArithOp::kMul:
      op = "*";
      break;
    case ArithOp::kDiv:
      op = "/";
      break;
  }
  return "(" + lhs_->ToString() + " " + op + " " + rhs_->ToString() + ")";
}

bool ArithmeticExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kArithmetic) return false;
  const auto& o = static_cast<const ArithmeticExpr&>(other);
  return op_ == o.op_ && lhs_->Equals(*o.lhs_) && rhs_->Equals(*o.rhs_);
}

ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}

ExprPtr MakeColumn(std::string qualifier, std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(qualifier),
                                         std::move(name));
}

ExprPtr MakeColumn(std::string name) {
  return std::make_shared<ColumnRefExpr>("", std::move(name));
}

ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ComparisonExpr>(op, std::move(lhs), std::move(rhs));
}

namespace {

ExprPtr MakeLogicalFlattened(LogicalOp op, std::vector<ExprPtr> children) {
  std::vector<ExprPtr> flat;
  for (auto& c : children) {
    if (c == nullptr) continue;
    if (c->kind() == ExprKind::kLogical &&
        static_cast<const LogicalExpr&>(*c).op() == op) {
      const auto& nested = static_cast<const LogicalExpr&>(*c).children();
      flat.insert(flat.end(), nested.begin(), nested.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.size() == 1) return flat[0];
  return std::make_shared<LogicalExpr>(op, std::move(flat));
}

}  // namespace

ExprPtr MakeAnd(std::vector<ExprPtr> children) {
  return MakeLogicalFlattened(LogicalOp::kAnd, std::move(children));
}

ExprPtr MakeOr(std::vector<ExprPtr> children) {
  return MakeLogicalFlattened(LogicalOp::kOr, std::move(children));
}

ExprPtr MakeNot(ExprPtr child) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot,
                                       std::vector<ExprPtr>{std::move(child)});
}

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithmeticExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr ConjoinNullable(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return MakeAnd({std::move(a), std::move(b)});
}

void CollectColumns(const ExprPtr& expr,
                    std::vector<const ColumnRefExpr*>* out) {
  if (expr == nullptr) return;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(expr.get()));
      return;
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      CollectColumns(c.lhs(), out);
      CollectColumns(c.rhs(), out);
      return;
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(*expr);
      for (const auto& child : l.children()) CollectColumns(child, out);
      return;
    }
    case ExprKind::kArithmetic: {
      const auto& a = static_cast<const ArithmeticExpr&>(*expr);
      CollectColumns(a.lhs(), out);
      CollectColumns(a.rhs(), out);
      return;
    }
  }
}

}  // namespace cosmos
