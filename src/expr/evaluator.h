#ifndef COSMOS_EXPR_EVALUATOR_H_
#define COSMOS_EXPR_EVALUATOR_H_

#include <optional>
#include <vector>

#include "expr/expression.h"
#include "stream/tuple.h"

namespace cosmos {

// Resolves a column reference against `schema`: tries the fully qualified
// name first ("O.itemID"), then the bare name ("itemID"), then — when the
// qualifier matches the schema's stream name — the bare name again. Returns
// the attribute index or nullopt.
std::optional<size_t> ResolveColumn(const Schema& schema,
                                    const ColumnRefExpr& col);

// Interprets `expr` against `tuple` (tree walk, name resolution per call).
// Comparisons yield bool Values; arithmetic yields numeric Values. Errors:
// unresolved columns, type mismatches, division by zero.
Result<Value> EvalExpr(const ExprPtr& expr, const Tuple& tuple);

// Evaluates a predicate expression to a boolean. A null expr means "true".
Result<bool> EvalPredicate(const ExprPtr& expr, const Tuple& tuple);

// A predicate bound to a fixed schema: column references are resolved to
// attribute indexes once, so per-tuple evaluation does no string lookups.
// This is the CBN's and the SPE's hot path.
class BoundPredicate {
 public:
  // Binds `expr` against `schema`; fails if any column cannot be resolved.
  // A null expr binds to the always-true predicate.
  static Result<BoundPredicate> Bind(const ExprPtr& expr,
                                     const Schema& schema);

  // Evaluates against a tuple of the bound schema. Type errors surface as
  // false (the tuple does not match) — the CBN drops non-conforming
  // datagrams rather than failing the router.
  bool Matches(const Tuple& tuple) const;

  const ExprPtr& expr() const { return expr_; }

  struct Node;  // bound tree; public so the binder in the .cc can build it

 private:
  BoundPredicate() = default;

  ExprPtr expr_;
  std::shared_ptr<const Node> root_;  // null => always true
};

}  // namespace cosmos

#endif  // COSMOS_EXPR_EVALUATOR_H_
