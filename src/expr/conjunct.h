#ifndef COSMOS_EXPR_CONJUNCT_H_
#define COSMOS_EXPR_CONJUNCT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "expr/interval.h"
#include "stream/tuple.h"

namespace cosmos {

// Canonical constraint on one attribute inside a conjunctive filter:
//  - numeric attributes: an Interval (equality becomes a point interval);
//  - strings/bools: an optional required value (`eq`) and excluded values
//    (`neq`).
// Default-constructed = unconstrained.
struct AttrConstraint {
  Interval interval;               // numeric range; All() when unconstrained
  std::optional<Value> eq;         // non-numeric equality
  std::vector<Value> neq;          // non-numeric disequalities

  bool IsUnconstrained() const {
    return interval.IsAll() && !eq.has_value() && neq.empty();
  }
  bool IsUnsatisfiable() const;

  // True iff `v` satisfies this constraint.
  bool Matches(const Value& v) const;

  std::string ToString(const std::string& attr) const;
};

// A conjunction of per-attribute constraints — the canonical form of a CBN
// datagram filter (paper §3.1: "a filter is a conjunction of constraints on
// the values of a set of attributes"). `residual` carries conjuncts that are
// not of the shape <column> <cmp> <literal> (join predicates, arithmetic);
// a clause destined for a CBN filter must have an empty residual.
class ConjunctiveClause {
 public:
  ConjunctiveClause() = default;

  const std::map<std::string, AttrConstraint>& constraints() const {
    return constraints_;
  }
  const std::vector<ExprPtr>& residual() const { return residual_; }
  bool has_residual() const { return !residual_.empty(); }

  // Narrows the constraint on `attribute` by intersecting with `interval`
  // (numeric) or recording the equality/disequality (non-numeric).
  void ConstrainInterval(const std::string& attribute,
                         const Interval& interval);
  void ConstrainEquals(const std::string& attribute, Value v);
  void ConstrainNotEquals(const std::string& attribute, Value v);
  void AddResidual(ExprPtr expr);

  // Looks up the constraint for `attribute`; unconstrained default when
  // absent.
  AttrConstraint ConstraintFor(const std::string& attribute) const;

  // True when some attribute constraint is empty (clause matches nothing).
  // Residual conjuncts are not analyzed.
  bool IsUnsatisfiable() const;

  // True when there are no constraints and no residual (matches everything).
  bool IsTautology() const {
    return constraints_.empty() && residual_.empty();
  }

  // Evaluates the canonical constraints (not the residual) against `tuple`
  // by attribute name; attributes absent from the tuple fail the match.
  bool MatchesCanonical(const Tuple& tuple) const;

  // Rebuilds an expression equivalent to this clause (constraints AND
  // residual). Returns nullptr for a tautology.
  ExprPtr ToExpr() const;

  // Product over constrained attributes of the fraction of each attribute's
  // declared range the constraint admits (uniform-independence assumption).
  // Attributes without declared ranges or non-numeric constraints
  // contribute the `default_eq_selectivity` factor for equalities and 1.0
  // otherwise. Residual conjuncts contribute `residual_selectivity` each.
  double EstimateSelectivity(const Schema& schema,
                             double default_eq_selectivity = 0.1,
                             double residual_selectivity = 0.5) const;

  std::string ToString() const;

  bool operator==(const ConjunctiveClause& other) const;

 private:
  std::map<std::string, AttrConstraint> constraints_;
  std::vector<ExprPtr> residual_;
};

// Decomposes a conjunction `expr` into the canonical clause. Atoms of shape
// <column> <cmp> <literal> (either operand order) become constraints; every
// other conjunct lands in the residual. A null expr yields a tautology.
// Fails only on non-boolean structure (e.g. bare literals).
Result<ConjunctiveClause> ClauseFromExpr(const ExprPtr& expr);

// Renders one attribute constraint as a conjunction of comparisons against
// `column` (a ColumnRef expression, possibly alias-qualified). Returns
// nullptr for an unconstrained constraint; an unsatisfiable interval
// renders as the FALSE comparison 1 = 0.
ExprPtr ConstraintToExpr(const ExprPtr& column, const AttrConstraint& c);

// Converts `expr` to disjunctive normal form as a vector of conjunctive
// clauses (an empty vector = unsatisfiable FALSE is never produced; a
// tautology yields one empty clause). NOT is only supported directly above
// comparison atoms.
Result<std::vector<ConjunctiveClause>> ToDnf(const ExprPtr& expr);

}  // namespace cosmos

#endif  // COSMOS_EXPR_CONJUNCT_H_
