#include "expr/interval.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace cosmos {

Interval::Interval() : lo_(-kInf), hi_(kInf), lo_open_(true), hi_open_(true) {}

Interval::Interval(double lo, bool lo_open, double hi, bool hi_open)
    : lo_(lo), hi_(hi), lo_open_(lo_open), hi_open_(hi_open) {
  // Infinite endpoints are always open.
  if (lo_ == -kInf) lo_open_ = true;
  if (hi_ == kInf) hi_open_ = true;
  if (IsEmpty()) *this = Empty();
  // Normalization invariant: every non-empty interval satisfies lo <= hi,
  // and the empty interval is in canonical form (so operator== stays a
  // field-wise comparison).
  COSMOS_DCHECK(IsEmpty() ? (lo_ == 1.0 && hi_ == 0.0) : lo_ <= hi_)
      << "unnormalized interval " << ToString();
  COSMOS_DCHECK(lo_ == lo_ && hi_ == hi_) << "NaN interval endpoint";
}

Interval Interval::Empty() {
  Interval e;
  e.lo_ = 1.0;
  e.hi_ = 0.0;
  e.lo_open_ = true;
  e.hi_open_ = true;
  return e;
}

bool Interval::IsEmpty() const {
  if (lo_ > hi_) return true;
  if (lo_ == hi_ && (lo_open_ || hi_open_)) return true;
  return false;
}

bool Interval::IsPoint() const {
  return lo_ == hi_ && !lo_open_ && !hi_open_;
}

bool Interval::Contains(double v) const {
  if (IsEmpty()) return false;
  if (v < lo_ || (v == lo_ && lo_open_)) return false;
  if (v > hi_ || (v == hi_ && hi_open_)) return false;
  return true;
}

bool Interval::Covers(const Interval& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  bool lo_ok = lo_ < other.lo_ ||
               (lo_ == other.lo_ && (!lo_open_ || other.lo_open_));
  bool hi_ok = hi_ > other.hi_ ||
               (hi_ == other.hi_ && (!hi_open_ || other.hi_open_));
  return lo_ok && hi_ok;
}

Interval Interval::Intersect(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return Empty();
  double lo = lo_;
  bool lo_open = lo_open_;
  if (other.lo_ > lo || (other.lo_ == lo && other.lo_open_)) {
    lo = other.lo_;
    lo_open = other.lo_open_ || (lo == lo_ && lo_open_);
  }
  double hi = hi_;
  bool hi_open = hi_open_;
  if (other.hi_ < hi || (other.hi_ == hi && other.hi_open_)) {
    hi = other.hi_;
    hi_open = other.hi_open_ || (hi == hi_ && hi_open_);
  }
  Interval out(lo, lo_open, hi, hi_open);
  if (out.IsEmpty()) return Empty();
  // The intersection lies inside both operands.
  COSMOS_DCHECK(Covers(out) && other.Covers(out))
      << ToString() << " ∩ " << other.ToString() << " = " << out.ToString();
  return out;
}

Interval Interval::Hull(const Interval& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  double lo;
  bool lo_open;
  if (lo_ < other.lo_) {
    lo = lo_;
    lo_open = lo_open_;
  } else if (other.lo_ < lo_) {
    lo = other.lo_;
    lo_open = other.lo_open_;
  } else {
    lo = lo_;
    lo_open = lo_open_ && other.lo_open_;
  }
  double hi;
  bool hi_open;
  if (hi_ > other.hi_) {
    hi = hi_;
    hi_open = hi_open_;
  } else if (other.hi_ > hi_) {
    hi = other.hi_;
    hi_open = other.hi_open_;
  } else {
    hi = hi_;
    hi_open = hi_open_ && other.hi_open_;
  }
  Interval out(lo, lo_open, hi, hi_open);
  // The hull is a relaxation: it must cover both operands.
  COSMOS_DCHECK(out.Covers(*this) && out.Covers(other))
      << ToString() << " ∪ " << other.ToString() << " ⊄ " << out.ToString();
  return out;
}

bool Interval::UnionIsExact(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return true;
  // The hull equals the union iff the intervals overlap or touch at a point
  // that belongs to at least one side.
  const Interval* a = this;
  const Interval* b = &other;
  if (b->lo_ < a->lo_ || (b->lo_ == a->lo_ && !b->lo_open_ && a->lo_open_)) {
    std::swap(a, b);
  }
  // Now a starts no later than b.
  if (a->hi_ > b->lo_) return true;
  if (a->hi_ < b->lo_) return false;
  // Touch at a single point: exact iff the point is included on either side.
  return !a->hi_open_ || !b->lo_open_;
}

double Interval::SelectivityWithin(double range_lo, double range_hi) const {
  if (IsEmpty()) return 0.0;
  if (range_hi <= range_lo) {
    // Degenerate attribute range: treat as a point domain.
    return Contains(range_lo) ? 1.0 : 0.0;
  }
  double lo = std::max(lo_, range_lo);
  double hi = std::min(hi_, range_hi);
  if (hi <= lo) {
    // Point intervals within the range still select a sliver; approximate
    // equality selectivity as 1/1000 of the domain.
    if (IsPoint() && lo_ >= range_lo && lo_ <= range_hi) return 0.001;
    return 0.0;
  }
  return (hi - lo) / (range_hi - range_lo);
}

std::string Interval::ToString() const {
  if (IsEmpty()) return "{}";
  std::string out = lo_open_ ? "(" : "[";
  out += lo_unbounded() ? "-inf" : StrFormat("%g", lo_);
  out += ", ";
  out += hi_unbounded() ? "+inf" : StrFormat("%g", hi_);
  out += hi_open_ ? ")" : "]";
  return out;
}

bool Interval::operator==(const Interval& other) const {
  if (IsEmpty() && other.IsEmpty()) return true;
  return lo_ == other.lo_ && hi_ == other.hi_ && lo_open_ == other.lo_open_ &&
         hi_open_ == other.hi_open_;
}

}  // namespace cosmos
