#ifndef COSMOS_EXPR_INTERVAL_H_
#define COSMOS_EXPR_INTERVAL_H_

#include <limits>
#include <string>

namespace cosmos {

// A (possibly unbounded, possibly half-open) interval over doubles. The
// canonical constraint form for numeric attributes: every conjunction of
// comparisons against one attribute collapses to one Interval.
//
// The empty interval is represented canonically (lo > hi); use IsEmpty().
class Interval {
 public:
  // Unconstrained interval (-inf, +inf).
  Interval();
  Interval(double lo, bool lo_open, double hi, bool hi_open);

  static Interval All() { return Interval(); }
  static Interval Empty();
  static Interval Point(double v) { return Interval(v, false, v, false); }
  static Interval AtLeast(double v, bool open = false) {
    return Interval(v, open, kInf, true);
  }
  static Interval AtMost(double v, bool open = false) {
    return Interval(-kInf, true, v, open);
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  bool lo_open() const { return lo_open_; }
  bool hi_open() const { return hi_open_; }
  bool lo_unbounded() const { return lo_ == -kInf; }
  bool hi_unbounded() const { return hi_ == kInf; }

  bool IsEmpty() const;
  bool IsAll() const { return lo_unbounded() && hi_unbounded(); }
  bool IsPoint() const;

  bool Contains(double v) const;

  // True iff every point of `other` lies in *this.
  bool Covers(const Interval& other) const;

  // Set intersection (exact).
  Interval Intersect(const Interval& other) const;

  // Convex hull of the union (the tightest single interval containing
  // both); this is the relaxation used when merging query predicates and is
  // a superset of the true union.
  Interval Hull(const Interval& other) const;

  // True iff the union of the two intervals is exactly their hull (they
  // overlap or touch), i.e. hull introduces no spurious points.
  bool UnionIsExact(const Interval& other) const;

  // Fraction of [range_lo, range_hi] covered by this interval, clamped to
  // [0,1]; the uniform-distribution selectivity of the constraint.
  double SelectivityWithin(double range_lo, double range_hi) const;

  // e.g. "[3, 10)", "(-inf, 5]", "{}", "(-inf, +inf)"
  std::string ToString() const;

  bool operator==(const Interval& other) const;

  static constexpr double kInf = std::numeric_limits<double>::infinity();

 private:
  double lo_;
  double hi_;
  bool lo_open_;
  bool hi_open_;
};

}  // namespace cosmos

#endif  // COSMOS_EXPR_INTERVAL_H_
