#include "expr/implication.h"

#include <algorithm>

namespace cosmos {
namespace {

// Does constraint `a` on one attribute imply constraint `b`?
bool ConstraintImplies(const AttrConstraint& a, const AttrConstraint& b) {
  if (a.IsUnsatisfiable()) return true;  // FALSE implies anything
  // Interval containment.
  if (!b.interval.Covers(a.interval)) {
    // A point equality in `a.eq` could still satisfy a numeric bound in b,
    // but eq holds non-numerics only, so no rescue here.
    return false;
  }
  if (b.eq.has_value()) {
    if (!a.eq.has_value() || !(*a.eq == *b.eq)) return false;
  }
  for (const auto& forbidden : b.neq) {
    // a must guarantee the value differs from `forbidden`.
    bool guaranteed = false;
    if (a.eq.has_value() && !(*a.eq == forbidden)) guaranteed = true;
    for (const auto& v : a.neq) {
      if (v == forbidden) guaranteed = true;
    }
    if (!guaranteed) return false;
  }
  return true;
}

// Structural multiset equality of residual conjunct lists.
bool ResidualsEqual(const std::vector<ExprPtr>& a,
                    const std::vector<ExprPtr>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const auto& x : a) {
    bool found = false;
    for (size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && x->Equals(*b[j])) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Every residual of `b` appears (structurally) among the residuals of `a`,
// i.e. `a` enforces at least the opaque conjuncts `b` enforces.
bool ResidualsSubsume(const std::vector<ExprPtr>& a,
                      const std::vector<ExprPtr>& b) {
  for (const auto& y : b) {
    bool found = false;
    for (const auto& x : a) {
      if (x->Equals(*y)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool ClauseImplies(const ConjunctiveClause& a, const ConjunctiveClause& b) {
  if (a.IsUnsatisfiable()) return true;
  // Opaque conjuncts in b must be enforced verbatim by a.
  if (!ResidualsSubsume(a.residual(), b.residual())) return false;
  for (const auto& [attr, bc] : b.constraints()) {
    AttrConstraint ac = a.ConstraintFor(attr);
    if (!ConstraintImplies(ac, bc)) return false;
  }
  return true;
}

bool ClauseEquivalent(const ConjunctiveClause& a,
                      const ConjunctiveClause& b) {
  return ClauseImplies(a, b) && ClauseImplies(b, a) &&
         ResidualsEqual(a.residual(), b.residual());
}

bool ClauseDisjoint(const ConjunctiveClause& a, const ConjunctiveClause& b) {
  if (a.IsUnsatisfiable() || b.IsUnsatisfiable()) return true;
  for (const auto& [attr, ac] : a.constraints()) {
    auto it = b.constraints().find(attr);
    if (it == b.constraints().end()) continue;
    const AttrConstraint& bc = it->second;
    if (ac.interval.Intersect(bc.interval).IsEmpty()) return true;
    if (ac.eq.has_value() && bc.eq.has_value() && !(*ac.eq == *bc.eq)) {
      return true;
    }
    if (ac.eq.has_value() &&
        std::any_of(bc.neq.begin(), bc.neq.end(),
                    [&](const Value& v) { return v == *ac.eq; })) {
      return true;
    }
    if (bc.eq.has_value() &&
        std::any_of(ac.neq.begin(), ac.neq.end(),
                    [&](const Value& v) { return v == *bc.eq; })) {
      return true;
    }
  }
  return false;
}

bool DnfImplies(const std::vector<ConjunctiveClause>& a,
                const std::vector<ConjunctiveClause>& b) {
  for (const auto& ca : a) {
    bool covered = false;
    for (const auto& cb : b) {
      if (ClauseImplies(ca, cb)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace cosmos
