#ifndef COSMOS_SPE_WRAPPER_H_
#define COSMOS_SPE_WRAPPER_H_

#include <memory>
#include <string>

#include "spe/engine.h"
#include "stream/catalog.h"

namespace cosmos {

// The pluggable-SPE boundary of the architecture (paper §2, Figure 2):
// COSMOS processors talk to their local engine only through a query wrapper
// (CQL text in) and a data wrapper (datagrams in, result tuples out), so
// heterogeneous engines — TelegraphCQ, STREAM, Aurora, GSN in the paper —
// can be plugged per processor. This repo ships the native wrapper around
// SpeEngine; the interface is what a third-party wrapper would implement.
class SpeWrapper {
 public:
  virtual ~SpeWrapper() = default;

  // Translates and installs a CQL query; results (tagged with `query_id`)
  // flow to `sink`. The result stream is named `result_name`.
  virtual Status InstallQuery(const std::string& query_id,
                              const std::string& cql,
                              const std::string& result_name,
                              ResultSink sink) = 0;

  virtual Status RemoveQuery(const std::string& query_id) = 0;

  // Data wrapper direction: a tuple of `stream` arriving from the CBN.
  virtual void DeliverTuple(const std::string& stream, const Tuple& tuple) = 0;

  // Schema of an installed query's result stream (null when unknown).
  virtual std::shared_ptr<const Schema> ResultSchema(
      const std::string& query_id) const = 0;
};

// Native wrapper: parses CQL against `catalog` and runs it on an embedded
// SpeEngine.
class NativeSpeWrapper : public SpeWrapper {
 public:
  explicit NativeSpeWrapper(const Catalog* catalog) : catalog_(catalog) {}

  Status InstallQuery(const std::string& query_id, const std::string& cql,
                      const std::string& result_name,
                      ResultSink sink) override;
  Status RemoveQuery(const std::string& query_id) override;
  void DeliverTuple(const std::string& stream, const Tuple& tuple) override;
  std::shared_ptr<const Schema> ResultSchema(
      const std::string& query_id) const override;

  const SpeEngine& engine() const { return engine_; }

  // Forwards telemetry attachment to the embedded engine.
  void SetTelemetry(MetricsRegistry* metrics, Tracer* tracer, int node) {
    engine_.SetTelemetry(metrics, tracer, node);
  }

 private:
  const Catalog* catalog_;
  SpeEngine engine_;
};

}  // namespace cosmos

#endif  // COSMOS_SPE_WRAPPER_H_
