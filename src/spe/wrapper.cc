#include "spe/wrapper.h"

namespace cosmos {

Status NativeSpeWrapper::InstallQuery(const std::string& query_id,
                                      const std::string& cql,
                                      const std::string& result_name,
                                      ResultSink sink) {
  COSMOS_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                          ParseAndAnalyze(cql, *catalog_, result_name));
  return engine_.InstallQuery(query_id, analyzed, std::move(sink));
}

Status NativeSpeWrapper::RemoveQuery(const std::string& query_id) {
  return engine_.RemoveQuery(query_id);
}

void NativeSpeWrapper::DeliverTuple(const std::string& stream,
                                    const Tuple& tuple) {
  engine_.PushSourceTuple(stream, tuple);
}

std::shared_ptr<const Schema> NativeSpeWrapper::ResultSchema(
    const std::string& query_id) const {
  const QueryPlan* p = engine_.plan(query_id);
  if (p == nullptr) return nullptr;
  return p->output_schema();
}

}  // namespace cosmos
