#ifndef COSMOS_SPE_WINDOW_H_
#define COSMOS_SPE_WINDOW_H_

#include <deque>

#include "common/time.h"
#include "stream/tuple.h"

namespace cosmos {

// A time-based sliding window buffer w(T) (paper §4): holds the tuples with
// timestamps in (now - T, now]. Insertion must be in non-decreasing
// timestamp order.
class WindowBuffer {
 public:
  explicit WindowBuffer(Duration size) : size_(size) {}

  Duration size() const { return size_; }

  void Insert(const Tuple& tuple) { tuples_.push_back(tuple); }

  // Evicts tuples that fell out of the window as of time `now`: those with
  // timestamp < now - T (unbounded windows never evict). Returns the number
  // evicted; when `evicted` is non-null the victims are appended to it.
  size_t EvictExpired(Timestamp now, std::vector<Tuple>* evicted = nullptr);

  const std::deque<Tuple>& contents() const { return tuples_; }
  bool empty() const { return tuples_.empty(); }
  size_t count() const { return tuples_.size(); }

 private:
  Duration size_;
  std::deque<Tuple> tuples_;
};

}  // namespace cosmos

#endif  // COSMOS_SPE_WINDOW_H_
