#ifndef COSMOS_SPE_MULTIWAY_JOIN_H_
#define COSMOS_SPE_MULTIWAY_JOIN_H_

#include <memory>
#include <vector>

#include "spe/operator.h"
#include "spe/window.h"

namespace cosmos {

// N-input sliding-window join with CQL semantics (generalizing Lemma 1):
// a combination (t_1, ..., t_n), one tuple per input, joins iff
//   (1) every equi-key constraint holds,
//   (2) the residual predicate holds on the concatenated tuple, and
//   (3) for every input i:  tau - t_i.timestamp <= T_i,
//       where tau = max_j t_j.timestamp — i.e. at the result's event time,
//       every component is still inside its stream's window.
//
// With per-port event-time-ordered arrival, the arriving tuple always
// carries tau, so each buffer j is evicted against tau - T_j and every
// resident combination satisfies (3)'s bound for the arriving port
// trivially. For n == 2 this reduces exactly to WindowJoinOperator's
// Lemma 1 condition.
class MultiWayJoinOperator final : public Operator {
 public:
  // An equi-join constraint between two ports' attributes (indexes into
  // the respective input schemas).
  struct KeyConstraint {
    size_t left_port = 0;
    size_t left_attr = 0;
    size_t right_port = 0;
    size_t right_attr = 0;
  };

  // `output_schema` must concatenate the input schemas in port order (see
  // MakeConcatenatedSchema); `residual` may be null.
  MultiWayJoinOperator(std::vector<Duration> windows,
                       std::vector<KeyConstraint> keys, ExprPtr residual,
                       std::shared_ptr<const Schema> output_schema);

  void Push(size_t port, const Tuple& tuple) override;

  size_t num_ports() const { return buffers_.size(); }
  size_t buffer_size(size_t port) const { return buffers_[port].count(); }

 private:
  // Depth-first combination enumeration: `chosen[p]` fixed for assigned
  // ports; extends port by port, checking key constraints as soon as both
  // endpoints are bound.
  void Extend(size_t next_port, size_t arrival_port, const Tuple& arrival,
              std::vector<const Tuple*>& chosen);
  bool KeysConsistent(const std::vector<const Tuple*>& chosen,
                      size_t just_bound) const;
  void EmitCombination(const std::vector<const Tuple*>& chosen);

  std::vector<Duration> windows_;
  std::vector<KeyConstraint> keys_;
  LazyPredicate residual_;
  std::shared_ptr<const Schema> output_schema_;
  std::vector<WindowBuffer> buffers_;
};

// Concatenation of several schemas with alias-qualified attribute names,
// in the given order (the N-way generalization of MakeJoinedSchema).
std::shared_ptr<const Schema> MakeConcatenatedSchema(
    const std::vector<std::pair<const Schema*, std::string>>& parts,
    const std::string& name);

}  // namespace cosmos

#endif  // COSMOS_SPE_MULTIWAY_JOIN_H_
