#ifndef COSMOS_SPE_AGGREGATE_H_
#define COSMOS_SPE_AGGREGATE_H_

#include <map>
#include <vector>

#include "query/ast.h"
#include "spe/operator.h"
#include "spe/window.h"

namespace cosmos {

// One aggregate computed by the operator.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  bool star = false;   // COUNT(*)
  size_t arg = 0;      // input attribute index (when !star)
};

// Windowed grouped aggregation over one input stream: maintains the
// sliding-window contents per Theorem 2's w(T) semantics and, on each
// arrival, emits the refreshed aggregate row of the arriving tuple's group
// (timestamp = arrival time). Evictions update state silently — the next
// emission of a group reflects them; no retraction rows are produced (an
// Istream-style simplification documented in DESIGN.md).
class WindowAggregateOperator final : public Operator {
 public:
  // `group_keys` are input attribute indexes; the output schema lists the
  // group columns first, then one column per AggSpec.
  WindowAggregateOperator(Duration window, std::vector<size_t> group_keys,
                          std::vector<AggSpec> aggs,
                          std::shared_ptr<const Schema> output_schema);

  void Push(size_t port, const Tuple& tuple) override;

  size_t num_groups() const { return groups_.size(); }

 private:
  // Group key as a vector of values (ordered map keeps determinism).
  struct KeyLess {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  struct GroupState {
    int64_t count = 0;           // rows in window
    std::vector<double> sums;    // per numeric agg
    std::vector<int64_t> counts; // per agg: rows contributing
  };

  std::vector<Value> KeyOf(const Tuple& t) const;
  void Apply(GroupState& g, const Tuple& t, int sign);
  Value Finalize(const GroupState& g, size_t agg_index,
                 const std::vector<Value>& key) const;
  // MIN/MAX need the live window contents of the group; recomputed on
  // demand (amortized fine for the workloads here).
  Value RecomputeExtremum(const std::vector<Value>& key, size_t agg_index,
                          bool want_min) const;

  Duration window_size_;
  std::vector<size_t> group_keys_;
  std::vector<AggSpec> aggs_;
  std::shared_ptr<const Schema> output_schema_;

  WindowBuffer window_;
  std::map<std::vector<Value>, GroupState, KeyLess> groups_;
};

}  // namespace cosmos

#endif  // COSMOS_SPE_AGGREGATE_H_
