#include "spe/engine.h"

#include <set>

#include "common/string_util.h"

namespace cosmos {

Status SpeEngine::InstallQuery(const std::string& id,
                               const AnalyzedQuery& query, ResultSink sink) {
  if (plans_.count(id) > 0) {
    return Status::AlreadyExists(StrFormat("query '%s'", id.c_str()));
  }
  COSMOS_ASSIGN_OR_RETURN(auto plan, QueryPlan::Build(query));
  plan->SetSink([this, id, sink = std::move(sink)](const Tuple& t) {
    ++results_emitted_;
    if (results_out_counter_ != nullptr) results_out_counter_->Increment();
    if (sink) sink(id, t);
  });
  // Register distinct consumed streams (Push fans to every matching port
  // internally, so one registration per stream suffices).
  std::set<std::string> streams(plan->input_streams().begin(),
                                plan->input_streams().end());
  for (const auto& s : streams) {
    by_stream_.emplace(s, Consumer{id, plan.get()});
  }
  plans_.emplace(id, std::move(plan));
  return Status::OK();
}

Status SpeEngine::RemoveQuery(const std::string& id) {
  auto it = plans_.find(id);
  if (it == plans_.end()) {
    return Status::NotFound(StrFormat("query '%s'", id.c_str()));
  }
  QueryPlan* plan = it->second.get();
  for (auto sit = by_stream_.begin(); sit != by_stream_.end();) {
    if (sit->second.plan == plan) {
      sit = by_stream_.erase(sit);
    } else {
      ++sit;
    }
  }
  plans_.erase(it);
  return Status::OK();
}

const QueryPlan* SpeEngine::plan(const std::string& id) const {
  auto it = plans_.find(id);
  return it == plans_.end() ? nullptr : it->second.get();
}

void SpeEngine::PushSourceTuple(const std::string& stream,
                                const Tuple& tuple) {
  ++tuples_pushed_;
  if (tuples_in_counter_ != nullptr) tuples_in_counter_->Increment();
  auto [begin, end] = by_stream_.equal_range(stream);
  for (auto it = begin; it != end; ++it) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      Tracer::Span span = tracer_->BeginSpan("spe", "eval", node_);
      span.AddArg("query", Tracer::ArgString(it->second.id));
      span.AddArg("stream", Tracer::ArgString(stream));
      it->second.plan->Push(stream, tuple);
    } else {
      it->second.plan->Push(stream, tuple);
    }
  }
}

void SpeEngine::SetTelemetry(MetricsRegistry* metrics, Tracer* tracer,
                             int node) {
  tracer_ = tracer;
  node_ = node;
  if (metrics == nullptr) {
    tuples_in_counter_ = nullptr;
    results_out_counter_ = nullptr;
    return;
  }
  std::string label = StrFormat("%d", node);
  tuples_in_counter_ = metrics->GetCounter("spe.tuples_in", "node", label);
  results_out_counter_ =
      metrics->GetCounter("spe.results_out", "node", label);
}

}  // namespace cosmos
