#include "spe/aggregate.h"

#include "common/logging.h"

namespace cosmos {

bool WindowAggregateOperator::KeyLess::operator()(
    const std::vector<Value>& a, const std::vector<Value>& b) const {
  COSMOS_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    auto cmp = a[i].Compare(b[i]);
    if (cmp.ok()) {
      if (*cmp < 0) return true;
      if (*cmp > 0) return false;
      continue;
    }
    // Incomparable types: order by type id, then by string form.
    if (a[i].type() != b[i].type()) return a[i].type() < b[i].type();
    std::string sa = a[i].ToString();
    std::string sb = b[i].ToString();
    if (sa != sb) return sa < sb;
  }
  return false;
}

WindowAggregateOperator::WindowAggregateOperator(
    Duration window, std::vector<size_t> group_keys, std::vector<AggSpec> aggs,
    std::shared_ptr<const Schema> output_schema)
    : window_size_(window),
      group_keys_(std::move(group_keys)),
      aggs_(std::move(aggs)),
      output_schema_(std::move(output_schema)),
      window_(window) {
  COSMOS_CHECK(output_schema_->num_attributes() ==
               group_keys_.size() + aggs_.size());
}

std::vector<Value> WindowAggregateOperator::KeyOf(const Tuple& t) const {
  std::vector<Value> key;
  key.reserve(group_keys_.size());
  for (size_t i : group_keys_) key.push_back(t.value(i));
  return key;
}

void WindowAggregateOperator::Apply(GroupState& g, const Tuple& t, int sign) {
  g.count += sign;
  if (g.sums.size() != aggs_.size()) {
    g.sums.assign(aggs_.size(), 0.0);
    g.counts.assign(aggs_.size(), 0);
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    if (a.star || a.func == AggFunc::kCount) {
      g.counts[i] += sign;
      continue;
    }
    const Value& v = t.value(a.arg);
    if (!v.is_numeric()) {
      if (a.func == AggFunc::kMin || a.func == AggFunc::kMax) {
        g.counts[i] += sign;  // extrema recomputed from window contents
      }
      continue;
    }
    g.counts[i] += sign;
    if (a.func == AggFunc::kSum || a.func == AggFunc::kAvg) {
      g.sums[i] += sign * v.NumericValue();
    }
  }
}

Value WindowAggregateOperator::RecomputeExtremum(
    const std::vector<Value>& key, size_t agg_index, bool want_min) const {
  const AggSpec& a = aggs_[agg_index];
  bool found = false;
  Value best;
  for (const auto& t : window_.contents()) {
    if (KeyOf(t) != key) continue;
    const Value& v = t.value(a.arg);
    if (v.is_null()) continue;
    if (!found) {
      best = v;
      found = true;
      continue;
    }
    auto cmp = v.Compare(best);
    if (cmp.ok() && ((want_min && *cmp < 0) || (!want_min && *cmp > 0))) {
      best = v;
    }
  }
  return best;  // Null when the group has no rows
}

Value WindowAggregateOperator::Finalize(const GroupState& g, size_t agg_index,
                                        const std::vector<Value>& key) const {
  const AggSpec& a = aggs_[agg_index];
  switch (a.func) {
    case AggFunc::kCount:
      return Value(static_cast<int64_t>(g.counts[agg_index]));
    case AggFunc::kSum:
      return Value(g.sums[agg_index]);
    case AggFunc::kAvg:
      if (g.counts[agg_index] == 0) return Value();
      return Value(g.sums[agg_index] /
                   static_cast<double>(g.counts[agg_index]));
    case AggFunc::kMin:
      return RecomputeExtremum(key, agg_index, /*want_min=*/true);
    case AggFunc::kMax:
      return RecomputeExtremum(key, agg_index, /*want_min=*/false);
  }
  return Value();
}

void WindowAggregateOperator::Push(size_t port, const Tuple& tuple) {
  (void)port;
  const Timestamp now = tuple.timestamp();

  // Evict expired tuples, updating their groups.
  std::vector<Tuple> evicted;
  window_.EvictExpired(now, &evicted);
  for (const auto& victim : evicted) {
    auto key = KeyOf(victim);
    auto it = groups_.find(key);
    if (it != groups_.end()) {
      Apply(it->second, victim, -1);
      if (it->second.count == 0) groups_.erase(it);
    }
  }

  // Insert the arrival.
  window_.Insert(tuple);
  std::vector<Value> key = KeyOf(tuple);
  GroupState& g = groups_[key];
  Apply(g, tuple, +1);

  // Emit the refreshed row of this group.
  std::vector<Value> out;
  out.reserve(output_schema_->num_attributes());
  for (const auto& k : key) out.push_back(k);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    out.push_back(Finalize(g, i, key));
  }
  Emit(Tuple(output_schema_, std::move(out), now));
}

}  // namespace cosmos
