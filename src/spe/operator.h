#ifndef COSMOS_SPE_OPERATOR_H_
#define COSMOS_SPE_OPERATOR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "expr/evaluator.h"
#include "stream/tuple.h"

namespace cosmos {

// Push-based operator of the mini stream processing engine. Operators form
// a tree; each emits result tuples to its sink. Input arrives in
// non-decreasing event-time order per port (the engine replays sources in
// timestamp order); operators preserve that order on their output.
class Operator {
 public:
  using Sink = std::function<void(const Tuple&)>;

  virtual ~Operator() = default;

  void SetSink(Sink sink) { sink_ = std::move(sink); }

  // Pushes one tuple into input `port` (0 except for joins).
  virtual void Push(size_t port, const Tuple& tuple) = 0;

 protected:
  void Emit(const Tuple& tuple) {
    if (sink_) sink_(tuple);
  }

 private:
  Sink sink_;
};

// A predicate that binds itself against each distinct input schema on first
// sight (sources may deliver projected schemas that differ between runs).
class LazyPredicate {
 public:
  LazyPredicate() = default;
  explicit LazyPredicate(ExprPtr expr) : expr_(std::move(expr)) {}

  bool has_expr() const { return expr_ != nullptr; }

  // False also when the expression cannot be bound to the tuple's schema
  // (a required attribute was projected away): such tuples cannot satisfy
  // the predicate.
  bool Matches(const Tuple& tuple);

 private:
  ExprPtr expr_;
  // Keyed by pointer identity, but the shared_ptr key RETAINS the schema so
  // a freed schema's address can never be reused for a different layout
  // while its binding is cached.
  std::unordered_map<std::shared_ptr<const Schema>,
                     std::shared_ptr<BoundPredicate>>
      bound_;
};

// Filters by a predicate.
class SelectOperator final : public Operator {
 public:
  explicit SelectOperator(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  void Push(size_t port, const Tuple& tuple) override;

 private:
  LazyPredicate predicate_;
};

// Re-shapes any incoming tuple onto `target` by attribute-name lookup
// (dropping extras); tuples missing a target attribute are dropped. Used as
// the source adapter so downstream operators can rely on fixed indexes.
class AdaptOperator final : public Operator {
 public:
  explicit AdaptOperator(std::shared_ptr<const Schema> target)
      : target_(std::move(target)) {}

  void Push(size_t port, const Tuple& tuple) override;

 private:
  std::shared_ptr<const Schema> target_;
  // Per input schema (retained — see LazyPredicate): index of each target
  // attribute, or -1 marker.
  std::unordered_map<std::shared_ptr<const Schema>, std::vector<int>>
      mappings_;
};

// Projects fixed indexes onto an output schema (optionally renaming).
class ProjectOperator final : public Operator {
 public:
  ProjectOperator(std::vector<size_t> indices,
                  std::shared_ptr<const Schema> output_schema)
      : indices_(std::move(indices)), output_schema_(std::move(output_schema)) {}

  void Push(size_t port, const Tuple& tuple) override;

 private:
  std::vector<size_t> indices_;
  std::shared_ptr<const Schema> output_schema_;
};

}  // namespace cosmos

#endif  // COSMOS_SPE_OPERATOR_H_
