#include "spe/plan.h"

#include <algorithm>

#include "common/string_util.h"
#include "spe/aggregate.h"
#include "spe/join.h"
#include "spe/multiway_join.h"

namespace cosmos {
namespace {

// The projected input schema of source `i`: the catalog schema narrowed to
// the attributes the query references, in schema order. Named by the alias
// so diagnostics read well.
std::shared_ptr<const Schema> ExpectedInputSchema(const AnalyzedQuery& q,
                                                  size_t i) {
  const ResolvedSource& src = q.sources()[i];
  std::vector<std::string> wanted = q.ReferencedAttributes(i);
  std::vector<AttributeDef> attrs;
  for (const auto& def : src.schema->attributes()) {
    if (std::find(wanted.begin(), wanted.end(), def.name) != wanted.end()) {
      attrs.push_back(def);
    }
  }
  return std::make_shared<Schema>(src.from.stream, std::move(attrs));
}

}  // namespace

void QueryPlan::SetSink(Operator::Sink sink) {
  // Wrap to count output tuples.
  terminal_->SetSink([this, sink = std::move(sink)](const Tuple& t) {
    ++tuples_out_;
    if (sink) sink(t);
  });
}

void QueryPlan::Push(const std::string& stream, const Tuple& tuple) {
  for (size_t i = 0; i < input_streams_.size(); ++i) {
    if (input_streams_[i] == stream) {
      ++tuples_in_;
      entries_[i]->Push(0, tuple);
    }
  }
}

Result<std::unique_ptr<QueryPlan>> QueryPlan::Build(
    const AnalyzedQuery& query) {
  const size_t n = query.sources().size();
  if (n == 0 || n > 8) {
    return Status::Unimplemented(
        StrFormat("plans support 1-8 sources, got %zu", n));
  }
  if (query.is_aggregate() && n != 1) {
    return Status::Unimplemented(
        "aggregates are supported over a single source");
  }

  auto plan = std::unique_ptr<QueryPlan>(new QueryPlan());
  plan->output_schema_ = query.output_schema();

  // Per-source: Adapt -> Select.
  std::vector<Operator*> tails;
  for (size_t i = 0; i < n; ++i) {
    auto expected = ExpectedInputSchema(query, i);
    plan->input_streams_.push_back(query.sources()[i].from.stream);
    plan->input_schemas_.push_back(expected);

    auto adapt = std::make_unique<AdaptOperator>(expected);
    auto select =
        std::make_unique<SelectOperator>(query.local_selection(i).ToExpr());
    Operator* select_ptr = select.get();
    adapt->SetSink([select_ptr](const Tuple& t) { select_ptr->Push(0, t); });

    plan->entries_.push_back(adapt.get());
    tails.push_back(select.get());
    plan->owned_.push_back(std::move(adapt));
    plan->owned_.push_back(std::move(select));
  }

  Operator* pre_output = nullptr;
  std::shared_ptr<const Schema> pre_schema;

  if (n == 2) {
    const auto& s0 = query.sources()[0];
    const auto& s1 = query.sources()[1];
    // Map equi-join attributes into the expected (projected) schemas.
    std::vector<std::pair<size_t, size_t>> keys;
    for (const auto& j : query.equi_joins()) {
      size_t ls = j.left_source;
      const std::string& lname =
          query.sources()[ls].schema->attribute(j.left_attr).name;
      const std::string& rname = query.sources()[j.right_source]
                                     .schema->attribute(j.right_attr)
                                     .name;
      const std::string& name0 = (ls == 0) ? lname : rname;
      const std::string& name1 = (ls == 0) ? rname : lname;
      auto i0 = plan->input_schemas_[0]->IndexOf(name0);
      auto i1 = plan->input_schemas_[1]->IndexOf(name1);
      if (!i0 || !i1) {
        return Status::Internal("join key missing from projected schema");
      }
      keys.emplace_back(*i0, *i1);
    }
    ExprPtr residual;
    for (const auto& r : query.cross_residual()) {
      residual = ConjoinNullable(residual, r);
    }
    pre_schema = MakeJoinedSchema(
        *plan->input_schemas_[0], s0.alias(), *plan->input_schemas_[1],
        s1.alias(), query.output_schema()->stream_name() + "_joined");
    auto join = std::make_unique<WindowJoinOperator>(
        query.WindowSize(0), query.WindowSize(1), std::move(keys),
        std::move(residual), pre_schema);
    WindowJoinOperator* join_ptr = join.get();
    tails[0]->SetSink([join_ptr](const Tuple& t) { join_ptr->Push(0, t); });
    tails[1]->SetSink([join_ptr](const Tuple& t) { join_ptr->Push(1, t); });
    pre_output = join.get();
    plan->owned_.push_back(std::move(join));
  } else if (n > 2) {
    // N-way window join (CQL semantics; see spe/multiway_join.h).
    std::vector<std::pair<const Schema*, std::string>> parts;
    std::vector<Duration> windows;
    for (size_t i = 0; i < n; ++i) {
      parts.emplace_back(plan->input_schemas_[i].get(),
                         query.sources()[i].alias());
      windows.push_back(query.WindowSize(i));
    }
    pre_schema = MakeConcatenatedSchema(
        parts, query.output_schema()->stream_name() + "_joined");
    std::vector<MultiWayJoinOperator::KeyConstraint> keys;
    for (const auto& j : query.equi_joins()) {
      const std::string& lname =
          query.sources()[j.left_source].schema->attribute(j.left_attr).name;
      const std::string& rname = query.sources()[j.right_source]
                                     .schema->attribute(j.right_attr)
                                     .name;
      auto li = plan->input_schemas_[j.left_source]->IndexOf(lname);
      auto ri = plan->input_schemas_[j.right_source]->IndexOf(rname);
      if (!li || !ri) {
        return Status::Internal("join key missing from projected schema");
      }
      keys.push_back(MultiWayJoinOperator::KeyConstraint{
          j.left_source, *li, j.right_source, *ri});
    }
    ExprPtr residual;
    for (const auto& r : query.cross_residual()) {
      residual = ConjoinNullable(residual, r);
    }
    auto join = std::make_unique<MultiWayJoinOperator>(
        std::move(windows), std::move(keys), std::move(residual),
        pre_schema);
    MultiWayJoinOperator* join_ptr = join.get();
    for (size_t i = 0; i < n; ++i) {
      size_t port = i;
      tails[i]->SetSink([join_ptr, port](const Tuple& t) {
        join_ptr->Push(port, t);
      });
    }
    pre_output = join.get();
    plan->owned_.push_back(std::move(join));
  } else {
    pre_output = tails[0];
    pre_schema = plan->input_schemas_[0];
  }

  if (query.is_aggregate()) {
    std::vector<size_t> group_keys;
    for (const auto& g : query.group_by()) {
      const std::string& name =
          query.sources()[g.source].schema->attribute(g.attr).name;
      auto idx = pre_schema->IndexOf(name);
      if (!idx) return Status::Internal("group key missing from input");
      group_keys.push_back(*idx);
    }
    std::vector<AggSpec> aggs;
    for (const auto& a : query.aggregates()) {
      AggSpec spec;
      spec.func = a.func;
      spec.star = a.star;
      if (!a.star) {
        const std::string& name =
            query.sources()[a.source].schema->attribute(a.attr).name;
        auto idx = pre_schema->IndexOf(name);
        if (!idx) return Status::Internal("agg arg missing from input");
        spec.arg = *idx;
      }
      aggs.push_back(spec);
    }
    auto agg = std::make_unique<WindowAggregateOperator>(
        query.WindowSize(0), std::move(group_keys), std::move(aggs),
        query.output_schema());
    WindowAggregateOperator* agg_ptr = agg.get();
    pre_output->SetSink([agg_ptr](const Tuple& t) { agg_ptr->Push(0, t); });
    plan->terminal_ = agg.get();
    plan->owned_.push_back(std::move(agg));
    return plan;
  }

  // Final projection onto the output schema.
  std::vector<size_t> indices;
  for (const auto& c : query.output_columns()) {
    const std::string& bare =
        query.sources()[c.source].schema->attribute(c.attr).name;
    std::string lookup =
        (n >= 2) ? query.sources()[c.source].alias() + "." + bare : bare;
    auto idx = pre_schema->IndexOf(lookup);
    if (!idx) {
      return Status::Internal(
          StrFormat("output column '%s' missing from input", lookup.c_str()));
    }
    indices.push_back(*idx);
  }
  auto project = std::make_unique<ProjectOperator>(std::move(indices),
                                                   query.output_schema());
  ProjectOperator* project_ptr = project.get();
  pre_output->SetSink(
      [project_ptr](const Tuple& t) { project_ptr->Push(0, t); });
  plan->terminal_ = project.get();
  plan->owned_.push_back(std::move(project));
  return plan;
}

}  // namespace cosmos
