#include "spe/operator.h"

namespace cosmos {

bool LazyPredicate::Matches(const Tuple& tuple) {
  if (expr_ == nullptr) return true;
  const std::shared_ptr<const Schema>& key = tuple.schema();
  auto it = bound_.find(key);
  if (it == bound_.end()) {
    auto bound = BoundPredicate::Bind(expr_, *tuple.schema());
    std::shared_ptr<BoundPredicate> ptr;
    if (bound.ok()) {
      ptr = std::make_shared<BoundPredicate>(std::move(bound).value());
    }
    it = bound_.emplace(key, std::move(ptr)).first;
  }
  if (it->second == nullptr) return false;  // unbindable => no match
  return it->second->Matches(tuple);
}

void SelectOperator::Push(size_t port, const Tuple& tuple) {
  (void)port;
  if (predicate_.Matches(tuple)) Emit(tuple);
}

void AdaptOperator::Push(size_t port, const Tuple& tuple) {
  (void)port;
  const std::shared_ptr<const Schema>& key = tuple.schema();
  auto it = mappings_.find(key);
  if (it == mappings_.end()) {
    std::vector<int> mapping;
    mapping.reserve(target_->num_attributes());
    for (const auto& attr : target_->attributes()) {
      auto idx = tuple.schema()->IndexOf(attr.name);
      mapping.push_back(idx.has_value() ? static_cast<int>(*idx) : -1);
    }
    it = mappings_.emplace(key, std::move(mapping)).first;
  }
  const std::vector<int>& mapping = it->second;
  std::vector<Value> values;
  values.reserve(mapping.size());
  for (int idx : mapping) {
    if (idx < 0) return;  // required attribute missing: drop
    values.push_back(tuple.value(static_cast<size_t>(idx)));
  }
  Emit(Tuple(target_, std::move(values), tuple.timestamp()));
}

void ProjectOperator::Push(size_t port, const Tuple& tuple) {
  (void)port;
  Emit(tuple.Project(indices_, output_schema_));
}

}  // namespace cosmos
