#ifndef COSMOS_SPE_ENGINE_H_
#define COSMOS_SPE_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "spe/plan.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace cosmos {

// Result tuples are reported with the id of the query that produced them;
// the result stream's name is the plan's output schema name.
using ResultSink =
    std::function<void(const std::string& query_id, const Tuple& tuple)>;

// The single-site stream processing engine: a set of live query plans fed
// by source tuples in event-time order. COSMOS treats SPEs as pluggable
// (paper §2); this engine is the reference implementation behind the native
// wrappers in spe/wrapper.h.
class SpeEngine {
 public:
  SpeEngine() = default;

  // Compiles and installs `query` under `id`.
  Status InstallQuery(const std::string& id, const AnalyzedQuery& query,
                      ResultSink sink);

  Status RemoveQuery(const std::string& id);

  bool HasQuery(const std::string& id) const {
    return plans_.count(id) > 0;
  }
  size_t num_queries() const { return plans_.size(); }

  const QueryPlan* plan(const std::string& id) const;

  // Feeds one source tuple to every plan consuming `stream`.
  void PushSourceTuple(const std::string& stream, const Tuple& tuple);

  uint64_t tuples_pushed() const { return tuples_pushed_; }
  uint64_t results_emitted() const { return results_emitted_; }

  // Attaches instruments (either nullptr = off): node-labeled tuples-in /
  // results-out counters plus one tracer slice per query evaluation on
  // `node`'s row.
  void SetTelemetry(MetricsRegistry* metrics, Tracer* tracer, int node);

 private:
  struct Consumer {
    std::string id;
    QueryPlan* plan = nullptr;
  };

  std::map<std::string, std::unique_ptr<QueryPlan>> plans_;
  // stream -> queries consuming it (a plan may appear once per port).
  std::multimap<std::string, Consumer> by_stream_;
  uint64_t tuples_pushed_ = 0;
  uint64_t results_emitted_ = 0;
  Tracer* tracer_ = nullptr;
  int node_ = -1;
  Counter* tuples_in_counter_ = nullptr;
  Counter* results_out_counter_ = nullptr;
};

}  // namespace cosmos

#endif  // COSMOS_SPE_ENGINE_H_
