#ifndef COSMOS_SPE_PLAN_H_
#define COSMOS_SPE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/analyzer.h"
#include "spe/operator.h"

namespace cosmos {

// An executable operator pipeline compiled from an AnalyzedQuery:
//
//   per source:  Adapt -> Select(local selection)
//   then:        [WindowJoin]  (two sources)
//                [WindowAggregate] (single source with aggregates)
//   finally:     Project -> result stream
//
// Supported shapes: 1-2 sources, select-project(-join), single-source
// grouped aggregation. These cover every query the paper's examples and
// evaluation workloads use; anything else returns kUnimplemented.
class QueryPlan {
 public:
  static Result<std::unique_ptr<QueryPlan>> Build(const AnalyzedQuery& query);

  QueryPlan(const QueryPlan&) = delete;
  QueryPlan& operator=(const QueryPlan&) = delete;

  // The streams this plan consumes (parallel to sources()).
  const std::vector<std::string>& input_streams() const {
    return input_streams_;
  }

  // The exact (projected) schema the plan expects per input stream — also
  // the projection set the processor's source profile should request.
  const std::vector<std::shared_ptr<const Schema>>& input_schemas() const {
    return input_schemas_;
  }

  const std::shared_ptr<const Schema>& output_schema() const {
    return output_schema_;
  }

  // Result tuples of the plan are delivered here.
  void SetSink(Operator::Sink sink);

  // Pushes one source tuple; `stream` selects the input port. Tuples of
  // streams the plan does not consume are ignored. A stream consumed twice
  // (self-join) feeds every matching port.
  void Push(const std::string& stream, const Tuple& tuple);

  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }

 private:
  QueryPlan() = default;

  std::vector<std::unique_ptr<Operator>> owned_;
  // Entry operator per source index.
  std::vector<Operator*> entries_;
  std::vector<std::string> input_streams_;
  std::vector<std::shared_ptr<const Schema>> input_schemas_;
  Operator* terminal_ = nullptr;
  std::shared_ptr<const Schema> output_schema_;
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
};

}  // namespace cosmos

#endif  // COSMOS_SPE_PLAN_H_
