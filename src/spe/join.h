#ifndef COSMOS_SPE_JOIN_H_
#define COSMOS_SPE_JOIN_H_

#include <deque>
#include <unordered_map>

#include "spe/operator.h"
#include "spe/window.h"

namespace cosmos {

// Symmetric time-window join of two streams (Lemma 1 of the paper): tuples
// t1 (port 0, window T1) and t2 (port 1, window T2) join iff
//   (1) the join predicates hold, and
//   (2) -T1 <= t1.timestamp - t2.timestamp <= T2.
// With per-port event-time-ordered arrival, a new t1 probes the port-1
// buffer for t2.timestamp in [t1.timestamp - T2, t1.timestamp]; symmetric
// for t2. Expired tuples are evicted lazily. [Now] windows (T = 0) match
// only equal timestamps; unbounded windows never evict.
//
// Equi-keyed joins probe a hash index over the resident window (O(matches)
// per arrival); key-less joins scan the window (temporal cross join).
//
// The output schema must be MakeJoinedSchema(left, la, right, ra, name);
// output timestamp = max of the two input timestamps.
class WindowJoinOperator final : public Operator {
 public:
  // `key_pairs` are (left attr index, right attr index) equi-join keys (may
  // be empty: pure temporal cross join). `residual` is evaluated on the
  // joined tuple (alias-qualified names), may be null.
  WindowJoinOperator(Duration left_window, Duration right_window,
                     std::vector<std::pair<size_t, size_t>> key_pairs,
                     ExprPtr residual,
                     std::shared_ptr<const Schema> output_schema);

  void Push(size_t port, const Tuple& tuple) override;

  size_t left_buffer_size() const { return left_.tuples.size(); }
  size_t right_buffer_size() const { return right_.tuples.size(); }

 private:
  // A window of resident tuples with a hash index over the join key.
  // Tuples are addressed by monotonically increasing sequence numbers so
  // index entries survive front eviction (seq - base = deque position).
  struct SideBuffer {
    Duration window = kInfiniteDuration;
    std::vector<size_t> key_attrs;
    std::deque<Tuple> tuples;
    uint64_t base = 0;
    std::unordered_multimap<size_t, uint64_t> index;  // key hash -> seq

    void Insert(const Tuple& t);
    // Drops tuples with timestamp < now - window (and their index entries).
    void Evict(Timestamp now);
    size_t KeyHash(const Tuple& t) const;
  };

  bool KeysEqual(const Tuple& l, const Tuple& r) const;
  void Probe(const Tuple& arriving, bool arriving_is_left);
  void EmitJoined(const Tuple& l, const Tuple& r);
  // Lemma-1 temporal test for a (left, right) pair.
  bool TemporalOk(const Tuple& l, const Tuple& r) const;

  Duration left_window_;
  Duration right_window_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  LazyPredicate residual_;
  std::shared_ptr<const Schema> output_schema_;

  SideBuffer left_;
  SideBuffer right_;
};

}  // namespace cosmos

#endif  // COSMOS_SPE_JOIN_H_
