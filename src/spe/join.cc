#include "spe/join.h"

#include "common/logging.h"

namespace cosmos {

size_t WindowJoinOperator::SideBuffer::KeyHash(const Tuple& t) const {
  size_t h = 0xCBF29CE484222325ULL;
  for (size_t i : key_attrs) {
    h ^= t.value(i).Hash();
    h *= 0x100000001B3ULL;
  }
  return h;
}

void WindowJoinOperator::SideBuffer::Insert(const Tuple& t) {
  uint64_t seq = base + tuples.size();
  tuples.push_back(t);
  if (!key_attrs.empty()) {
    index.emplace(KeyHash(t), seq);
  }
}

void WindowJoinOperator::SideBuffer::Evict(Timestamp now) {
  if (window == kInfiniteDuration) return;
  const Timestamp cutoff = now - window;
  while (!tuples.empty() && tuples.front().timestamp() < cutoff) {
    if (!key_attrs.empty()) {
      size_t h = KeyHash(tuples.front());
      auto [begin, end] = index.equal_range(h);
      for (auto it = begin; it != end; ++it) {
        if (it->second == base) {
          index.erase(it);
          break;
        }
      }
    }
    tuples.pop_front();
    ++base;
  }
}

WindowJoinOperator::WindowJoinOperator(
    Duration left_window, Duration right_window,
    std::vector<std::pair<size_t, size_t>> key_pairs, ExprPtr residual,
    std::shared_ptr<const Schema> output_schema)
    : left_window_(left_window),
      right_window_(right_window),
      residual_(std::move(residual)),
      output_schema_(std::move(output_schema)) {
  for (const auto& [l, r] : key_pairs) {
    left_keys_.push_back(l);
    right_keys_.push_back(r);
  }
  left_.window = left_window_;
  left_.key_attrs = left_keys_;
  right_.window = right_window_;
  right_.key_attrs = right_keys_;
}

bool WindowJoinOperator::KeysEqual(const Tuple& l, const Tuple& r) const {
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    const Value& a = l.value(left_keys_[i]);
    const Value& b = r.value(right_keys_[i]);
    auto cmp = a.Compare(b);
    if (!cmp.ok() || *cmp != 0) return false;
  }
  return true;
}

bool WindowJoinOperator::TemporalOk(const Tuple& l, const Tuple& r) const {
  int64_t diff = l.timestamp() - r.timestamp();
  return (left_window_ == kInfiniteDuration || diff >= -left_window_) &&
         (right_window_ == kInfiniteDuration || diff <= right_window_);
}

void WindowJoinOperator::EmitJoined(const Tuple& l, const Tuple& r) {
  std::vector<Value> values;
  values.reserve(l.num_values() + r.num_values());
  for (const auto& v : l.values()) values.push_back(v);
  for (const auto& v : r.values()) values.push_back(v);
  Timestamp ts = std::max(l.timestamp(), r.timestamp());
  Tuple joined(output_schema_, std::move(values), ts);
  if (!residual_.has_expr() || residual_.Matches(joined)) Emit(joined);
}

void WindowJoinOperator::Probe(const Tuple& arriving, bool arriving_is_left) {
  // Lemma 1 condition: -T1 <= t1.ts - t2.ts <= T2. Evict the other side
  // against the window that bounds *its* age relative to the arrival.
  SideBuffer& other = arriving_is_left ? right_ : left_;
  other.Evict(arriving.timestamp());

  auto try_pair = [&](const Tuple& resident) {
    const Tuple& l = arriving_is_left ? arriving : resident;
    const Tuple& r = arriving_is_left ? resident : arriving;
    if (!TemporalOk(l, r)) return;
    if (!KeysEqual(l, r)) return;
    EmitJoined(l, r);
  };

  if (left_keys_.empty()) {
    // Temporal cross join: scan the resident window.
    for (const auto& resident : other.tuples) try_pair(resident);
  } else {
    // Hash probe: only residents with a matching key hash. The arrival is
    // hashed with its own side's key attributes; Value::Hash makes equal
    // cross-type numerics collide, so equal keys always share a bucket.
    const std::vector<size_t>& arrival_keys =
        arriving_is_left ? left_keys_ : right_keys_;
    size_t h = 0xCBF29CE484222325ULL;
    for (size_t i : arrival_keys) {
      h ^= arriving.value(i).Hash();
      h *= 0x100000001B3ULL;
    }
    auto [begin, end] = other.index.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      const Tuple& resident =
          other.tuples[static_cast<size_t>(it->second - other.base)];
      try_pair(resident);
    }
  }

  // Insert the arrival into its own buffer for future probes.
  (arriving_is_left ? left_ : right_).Insert(arriving);
}

void WindowJoinOperator::Push(size_t port, const Tuple& tuple) {
  COSMOS_CHECK(port == 0 || port == 1) << "binary join got port " << port;
  Probe(tuple, port == 0);
}

}  // namespace cosmos
