#include "spe/multiway_join.h"

#include <algorithm>

#include "common/logging.h"

namespace cosmos {

std::shared_ptr<const Schema> MakeConcatenatedSchema(
    const std::vector<std::pair<const Schema*, std::string>>& parts,
    const std::string& name) {
  std::vector<AttributeDef> attrs;
  for (const auto& [schema, alias] : parts) {
    for (const auto& a : schema->attributes()) {
      AttributeDef def = a;
      def.name = alias + "." + a.name;
      attrs.push_back(std::move(def));
    }
  }
  return std::make_shared<Schema>(name, std::move(attrs));
}

MultiWayJoinOperator::MultiWayJoinOperator(
    std::vector<Duration> windows, std::vector<KeyConstraint> keys,
    ExprPtr residual, std::shared_ptr<const Schema> output_schema)
    : windows_(std::move(windows)),
      keys_(std::move(keys)),
      residual_(std::move(residual)),
      output_schema_(std::move(output_schema)) {
  COSMOS_CHECK_GE(windows_.size(), 2u) << "multiway join needs >= 2 inputs";
  buffers_.reserve(windows_.size());
  for (Duration w : windows_) buffers_.emplace_back(w);
}

bool MultiWayJoinOperator::KeysConsistent(
    const std::vector<const Tuple*>& chosen, size_t just_bound) const {
  for (const auto& k : keys_) {
    // Only check constraints whose later-bound endpoint is `just_bound`
    // and whose other endpoint is already chosen.
    size_t other;
    size_t this_attr;
    size_t other_attr;
    if (k.left_port == just_bound) {
      other = k.right_port;
      this_attr = k.left_attr;
      other_attr = k.right_attr;
    } else if (k.right_port == just_bound) {
      other = k.left_port;
      this_attr = k.right_attr;
      other_attr = k.left_attr;
    } else {
      continue;
    }
    if (chosen[other] == nullptr) continue;  // checked when bound later
    const Value& a = chosen[just_bound]->value(this_attr);
    const Value& b = chosen[other]->value(other_attr);
    auto cmp = a.Compare(b);
    if (!cmp.ok() || *cmp != 0) return false;
  }
  return true;
}

void MultiWayJoinOperator::EmitCombination(
    const std::vector<const Tuple*>& chosen) {
  std::vector<Value> values;
  Timestamp tau = kInvalidTimestamp;
  size_t total = 0;
  for (const Tuple* t : chosen) total += t->num_values();
  values.reserve(total);
  for (const Tuple* t : chosen) {
    for (const auto& v : t->values()) values.push_back(v);
    tau = std::max(tau, t->timestamp());
  }
  Tuple joined(output_schema_, std::move(values), tau);
  if (!residual_.has_expr() || residual_.Matches(joined)) Emit(joined);
}

void MultiWayJoinOperator::Extend(size_t next_port, size_t arrival_port,
                                  const Tuple& arrival,
                                  std::vector<const Tuple*>& chosen) {
  if (next_port == buffers_.size()) {
    EmitCombination(chosen);
    return;
  }
  if (next_port == arrival_port) {
    chosen[next_port] = &arrival;
    if (KeysConsistent(chosen, next_port)) {
      Extend(next_port + 1, arrival_port, arrival, chosen);
    }
    chosen[next_port] = nullptr;
    return;
  }
  const Duration window = windows_[next_port];
  const Timestamp tau = arrival.timestamp();
  for (const auto& resident : buffers_[next_port].contents()) {
    // Condition (3) for this component: tau - ts <= T. Residents newer
    // than tau cannot exist under event-time order, but guard anyway.
    if (window != kInfiniteDuration) {
      int64_t age = tau - resident.timestamp();
      if (age > window || age < 0) continue;
    }
    chosen[next_port] = &resident;
    if (KeysConsistent(chosen, next_port)) {
      Extend(next_port + 1, arrival_port, arrival, chosen);
    }
  }
  chosen[next_port] = nullptr;
}

void MultiWayJoinOperator::Push(size_t port, const Tuple& tuple) {
  COSMOS_CHECK_LT(port, buffers_.size());
  const Timestamp now = tuple.timestamp();
  // Evict every buffer against its own window at the arrival's event time.
  for (size_t j = 0; j < buffers_.size(); ++j) {
    buffers_[j].EvictExpired(now, nullptr);
  }
  std::vector<const Tuple*> chosen(buffers_.size(), nullptr);
  Extend(0, port, tuple, chosen);
  buffers_[port].Insert(tuple);
}

}  // namespace cosmos
