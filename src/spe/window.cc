#include "spe/window.h"

namespace cosmos {

size_t WindowBuffer::EvictExpired(Timestamp now, std::vector<Tuple>* evicted) {
  if (size_ == kInfiniteDuration) return 0;
  size_t n = 0;
  // Window membership at time `now`: timestamp >= now - T.
  const Timestamp cutoff = now - size_;
  while (!tuples_.empty() && tuples_.front().timestamp() < cutoff) {
    if (evicted != nullptr) evicted->push_back(std::move(tuples_.front()));
    tuples_.pop_front();
    ++n;
  }
  return n;
}

}  // namespace cosmos
