#!/usr/bin/env python3
"""Repo-local lint rules clang-tidy cannot express.

Checked over src/, tests/, bench/, examples/:

  1. header-guards    — every header uses an #ifndef/#define guard whose
                        token matches its path (COSMOS_<PATH>_H_); no
                        #pragma once (the repo standardized on guards).
  2. using-namespace  — no `using namespace` at any scope in headers.
  3. own-header-first — every src/ .cc file with a sibling header includes
                        that header as its first #include (catches headers
                        that silently depend on prior includes).
  4. no-build-include — no #include path mentioning build/ (generated
                        trees must never be an include source).

Exit status 0 when clean, 1 with one "file:line: rule: message" diagnostic
per violation otherwise. Registered as the `lint` ctest entry.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ["src", "tests", "bench", "examples"]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"][^>"]+[>"])')
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")


def guard_token(header: Path) -> str:
    """COSMOS_<PATH>_H_ for a header path relative to its source root."""
    rel = header.relative_to(REPO)
    parts = list(rel.parts)
    if parts[0] == "src":  # src/ is the include root; others keep their dir
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    return "COSMOS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def strip_comments(lines: list[str]) -> list[str]:
    """Blank out // and /* */ comment content, preserving line numbers."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            else:
                line_c = line.find("//", i)
                block_c = line.find("/*", i)
                if line_c != -1 and (block_c == -1 or line_c < block_c):
                    result.append(line[i:line_c])
                    i = len(line)
                elif block_c != -1:
                    result.append(line[i:block_c])
                    in_block = True
                    i = block_c + 2
                else:
                    result.append(line[i:])
                    i = len(line)
        out.append("".join(result))
    return out


def check_header(path: Path, lines: list[str], errors: list[str]) -> None:
    rel = path.relative_to(REPO)
    code = strip_comments(lines)

    for n, line in enumerate(code, 1):
        if PRAGMA_ONCE_RE.match(line):
            errors.append(
                f"{rel}:{n}: header-guards: use an include guard "
                f"({guard_token(path)}), not #pragma once"
            )
        if USING_NAMESPACE_RE.match(line):
            errors.append(
                f"{rel}:{n}: using-namespace: `using namespace` leaks into "
                "every includer; qualify names instead"
            )

    want = guard_token(path)
    ifndef = next((m for line in code if (m := IFNDEF_RE.match(line))), None)
    if ifndef is None:
        errors.append(f"{rel}:1: header-guards: missing #ifndef {want} guard")
        return
    if ifndef.group(1) != want:
        errors.append(
            f"{rel}:1: header-guards: guard {ifndef.group(1)} does not "
            f"match path (expected {want})"
        )
        return
    define = next((m for line in code if (m := DEFINE_RE.match(line))), None)
    if define is None or define.group(1) != want:
        errors.append(
            f"{rel}:1: header-guards: #define does not match #ifndef {want}"
        )


def check_source(path: Path, lines: list[str], errors: list[str]) -> None:
    rel = path.relative_to(REPO)
    code = strip_comments(lines)

    includes = []  # (line_number, include_operand)
    for n, line in enumerate(code, 1):
        m = INCLUDE_RE.match(line)
        if m:
            includes.append((n, m.group(1)))

    for n, inc in includes:
        if "build/" in inc:
            errors.append(
                f"{rel}:{n}: no-build-include: never include from a build "
                f"tree ({inc})"
            )

    # Own-header-first applies to library .cc files under src/.
    if rel.parts[0] != "src" or path.suffix not in {".cc", ".cpp"}:
        return
    own = path.with_suffix(".h")
    if not own.exists():
        return
    own_inc = '"' + str(own.relative_to(REPO / "src")) + '"'
    if not includes:
        errors.append(
            f"{rel}:1: own-header-first: expected {own_inc} as the first "
            "include"
        )
        return
    n, first = includes[0]
    if first != own_inc:
        errors.append(
            f"{rel}:{n}: own-header-first: first include is {first}, "
            f"expected {own_inc}"
        )


def main() -> int:
    errors: list[str] = []
    seen = 0
    for d in SOURCE_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in {".h", ".hpp", ".cc", ".cpp"}:
                continue
            seen += 1
            lines = path.read_text(encoding="utf-8").splitlines()
            if path.suffix in {".h", ".hpp"}:
                check_header(path, lines, errors)
            check_source(path, lines, errors)

    for e in errors:
        print(e)
    print(
        f"lint.py: {seen} files checked, {len(errors)} violation(s)",
        file=sys.stderr,
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
