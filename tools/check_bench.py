#!/usr/bin/env python3
"""Validates BENCH_routing.json, the forwarding-benchmark artifact.

The file is google-benchmark JSON produced by:

    bench_micro \
        --benchmark_filter='BM_RoutingForward|BM_ForwardWith|BM_CounterHotPath|BM_Match' \
        --benchmark_out=BENCH_routing.json --benchmark_out_format=json

Three gates, all measured within the same run:

  1. Index speedup — the run covers table sizes {10^2, 10^3, 10^4} for both
     the stream-partitioned index (BM_RoutingForwardIndexed) and the
     pre-index linear reference (BM_RoutingForwardLinear), each reporting a
     datagrams_per_sec counter, and the indexed implementation at 10^4
     entries is at least MIN_SPEEDUP x the linear one. BM_RoutingForwardIndexed
     runs whatever Router defaults to (now the compiled matcher), so a
     matcher regression that slowed real forwarding would trip this gate too.
  2. Match-engine speedup — within one (link, stream) bucket, the compiled
     counting matcher (BM_MatchCompiled) is at least MIN_MATCH_SPEEDUP x
     the interpreted per-profile walk (BM_MatchInterpreted) at 10^4
     profiles, sizes {10^2, 10^3, 10^4} all present.
  3. Telemetry overhead — publishing through an instrumented CBN
     (BM_ForwardWithTelemetry) keeps at least MIN_TELEMETRY_RATIO of the
     bare network's throughput (BM_ForwardWithoutTelemetry), so the
     instruments can stay on everywhere.

Usage: tools/check_bench.py [BENCH_routing.json]
"""

import json
import sys

MIN_SPEEDUP = 5.0
# Compiled matching must beat the interpreted walk >= 3x at 10^4 profiles.
MIN_MATCH_SPEEDUP = 3.0
# Instrumented forwarding must retain >= 95% of bare throughput.
MIN_TELEMETRY_RATIO = 0.95
SIZES = (100, 1000, 10000)
IMPLS = ("Indexed", "Linear")
MATCH_IMPLS = ("Compiled", "Interpreted")
TELEMETRY_BENCHES = (
    "BM_CounterHotPath",
    "BM_ForwardWithoutTelemetry",
    "BM_ForwardWithTelemetry",
)


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_routing.json"
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        print(f"SKIP: {path} not found — run the forwarding benchmark first "
              "(see the module docstring); nothing to validate outside the "
              "bench job.")
        return 0
    bench = {b["name"]: b for b in data.get("benchmarks", [])}

    missing = []
    for impl in IMPLS:
        for n in SIZES:
            name = f"BM_RoutingForward{impl}/{n}"
            if name not in bench:
                missing.append(name)
            elif "datagrams_per_sec" not in bench[name]:
                missing.append(f"{name}:datagrams_per_sec")
    for impl in MATCH_IMPLS:
        for n in SIZES:
            name = f"BM_Match{impl}/{n}"
            if name not in bench:
                missing.append(name)
            elif "datagrams_per_sec" not in bench[name]:
                missing.append(f"{name}:datagrams_per_sec")
    for name in TELEMETRY_BENCHES:
        if name not in bench:
            missing.append(name)
    for name in TELEMETRY_BENCHES[1:]:
        if name in bench and "datagrams_per_sec" not in bench[name]:
            missing.append(f"{name}:datagrams_per_sec")
    if missing:
        print(f"{path} incomplete: missing {', '.join(missing)}",
              file=sys.stderr)
        return 1

    for n in SIZES:
        indexed = bench[f"BM_RoutingForwardIndexed/{n}"]["datagrams_per_sec"]
        linear = bench[f"BM_RoutingForwardLinear/{n}"]["datagrams_per_sec"]
        print(f"table size {n:>6}: indexed {indexed:>14,.0f} dg/s | "
              f"linear {linear:>14,.0f} dg/s | {indexed / linear:5.1f}x")

    indexed = bench["BM_RoutingForwardIndexed/10000"]["datagrams_per_sec"]
    linear = bench["BM_RoutingForwardLinear/10000"]["datagrams_per_sec"]
    speedup = indexed / linear
    ok = True
    if speedup < MIN_SPEEDUP:
        print(f"indexed forwarding at 10^4 entries is only {speedup:.1f}x "
              f"the linear baseline (need >= {MIN_SPEEDUP}x)",
              file=sys.stderr)
        ok = False
    else:
        print(f"OK: {speedup:.1f}x >= {MIN_SPEEDUP}x at 10^4 entries")

    for n in SIZES:
        compiled = bench[f"BM_MatchCompiled/{n}"]["datagrams_per_sec"]
        interp = bench[f"BM_MatchInterpreted/{n}"]["datagrams_per_sec"]
        print(f"bucket size {n:>6}: compiled {compiled:>14,.0f} dg/s | "
              f"interpreted {interp:>14,.0f} dg/s | "
              f"{compiled / interp:5.1f}x")

    compiled = bench["BM_MatchCompiled/10000"]["datagrams_per_sec"]
    interp = bench["BM_MatchInterpreted/10000"]["datagrams_per_sec"]
    match_speedup = compiled / interp
    if match_speedup < MIN_MATCH_SPEEDUP:
        print(f"compiled matching at 10^4 profiles is only "
              f"{match_speedup:.1f}x the interpreted walk "
              f"(need >= {MIN_MATCH_SPEEDUP}x)", file=sys.stderr)
        ok = False
    else:
        print(f"OK: {match_speedup:.1f}x >= {MIN_MATCH_SPEEDUP}x at 10^4 "
              "profiles per bucket")

    bare = bench["BM_ForwardWithoutTelemetry"]["datagrams_per_sec"]
    instrumented = bench["BM_ForwardWithTelemetry"]["datagrams_per_sec"]
    ratio = instrumented / bare
    print(f"telemetry: bare {bare:>14,.0f} dg/s | instrumented "
          f"{instrumented:>14,.0f} dg/s | {ratio:6.1%} retained")
    if ratio < MIN_TELEMETRY_RATIO:
        print(f"telemetry overhead too high: instrumented forwarding keeps "
              f"only {ratio:.1%} of bare throughput "
              f"(need >= {MIN_TELEMETRY_RATIO:.0%})", file=sys.stderr)
        ok = False
    else:
        print(f"OK: telemetry keeps {ratio:.1%} >= "
              f"{MIN_TELEMETRY_RATIO:.0%} of bare forwarding throughput")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
