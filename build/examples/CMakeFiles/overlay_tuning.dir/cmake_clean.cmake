file(REMOVE_RECURSE
  "CMakeFiles/overlay_tuning.dir/overlay_tuning.cpp.o"
  "CMakeFiles/overlay_tuning.dir/overlay_tuning.cpp.o.d"
  "overlay_tuning"
  "overlay_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
