# Empty dependencies file for overlay_tuning.
# This may be replaced when dependencies are built.
