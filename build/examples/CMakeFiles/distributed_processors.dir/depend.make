# Empty dependencies file for distributed_processors.
# This may be replaced when dependencies are built.
