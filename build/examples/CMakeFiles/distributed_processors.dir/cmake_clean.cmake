file(REMOVE_RECURSE
  "CMakeFiles/distributed_processors.dir/distributed_processors.cpp.o"
  "CMakeFiles/distributed_processors.dir/distributed_processors.cpp.o.d"
  "distributed_processors"
  "distributed_processors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
