# Empty compiler generated dependencies file for auction_monitoring.
# This may be replaced when dependencies are built.
