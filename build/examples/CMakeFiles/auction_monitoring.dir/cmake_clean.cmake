file(REMOVE_RECURSE
  "CMakeFiles/auction_monitoring.dir/auction_monitoring.cpp.o"
  "CMakeFiles/auction_monitoring.dir/auction_monitoring.cpp.o.d"
  "auction_monitoring"
  "auction_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
