file(REMOVE_RECURSE
  "CMakeFiles/cosmos_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/cosmos_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/cosmos_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/cosmos_sim.dir/sim/simulator.cc.o.d"
  "libcosmos_sim.a"
  "libcosmos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
