# Empty dependencies file for cosmos_sim.
# This may be replaced when dependencies are built.
