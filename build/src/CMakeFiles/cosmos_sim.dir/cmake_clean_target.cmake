file(REMOVE_RECURSE
  "libcosmos_sim.a"
)
