
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spe/aggregate.cc" "src/CMakeFiles/cosmos_spe.dir/spe/aggregate.cc.o" "gcc" "src/CMakeFiles/cosmos_spe.dir/spe/aggregate.cc.o.d"
  "/root/repo/src/spe/engine.cc" "src/CMakeFiles/cosmos_spe.dir/spe/engine.cc.o" "gcc" "src/CMakeFiles/cosmos_spe.dir/spe/engine.cc.o.d"
  "/root/repo/src/spe/join.cc" "src/CMakeFiles/cosmos_spe.dir/spe/join.cc.o" "gcc" "src/CMakeFiles/cosmos_spe.dir/spe/join.cc.o.d"
  "/root/repo/src/spe/multiway_join.cc" "src/CMakeFiles/cosmos_spe.dir/spe/multiway_join.cc.o" "gcc" "src/CMakeFiles/cosmos_spe.dir/spe/multiway_join.cc.o.d"
  "/root/repo/src/spe/operator.cc" "src/CMakeFiles/cosmos_spe.dir/spe/operator.cc.o" "gcc" "src/CMakeFiles/cosmos_spe.dir/spe/operator.cc.o.d"
  "/root/repo/src/spe/plan.cc" "src/CMakeFiles/cosmos_spe.dir/spe/plan.cc.o" "gcc" "src/CMakeFiles/cosmos_spe.dir/spe/plan.cc.o.d"
  "/root/repo/src/spe/window.cc" "src/CMakeFiles/cosmos_spe.dir/spe/window.cc.o" "gcc" "src/CMakeFiles/cosmos_spe.dir/spe/window.cc.o.d"
  "/root/repo/src/spe/wrapper.cc" "src/CMakeFiles/cosmos_spe.dir/spe/wrapper.cc.o" "gcc" "src/CMakeFiles/cosmos_spe.dir/spe/wrapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
