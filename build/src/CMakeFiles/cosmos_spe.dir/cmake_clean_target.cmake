file(REMOVE_RECURSE
  "libcosmos_spe.a"
)
