file(REMOVE_RECURSE
  "CMakeFiles/cosmos_spe.dir/spe/aggregate.cc.o"
  "CMakeFiles/cosmos_spe.dir/spe/aggregate.cc.o.d"
  "CMakeFiles/cosmos_spe.dir/spe/engine.cc.o"
  "CMakeFiles/cosmos_spe.dir/spe/engine.cc.o.d"
  "CMakeFiles/cosmos_spe.dir/spe/join.cc.o"
  "CMakeFiles/cosmos_spe.dir/spe/join.cc.o.d"
  "CMakeFiles/cosmos_spe.dir/spe/multiway_join.cc.o"
  "CMakeFiles/cosmos_spe.dir/spe/multiway_join.cc.o.d"
  "CMakeFiles/cosmos_spe.dir/spe/operator.cc.o"
  "CMakeFiles/cosmos_spe.dir/spe/operator.cc.o.d"
  "CMakeFiles/cosmos_spe.dir/spe/plan.cc.o"
  "CMakeFiles/cosmos_spe.dir/spe/plan.cc.o.d"
  "CMakeFiles/cosmos_spe.dir/spe/window.cc.o"
  "CMakeFiles/cosmos_spe.dir/spe/window.cc.o.d"
  "CMakeFiles/cosmos_spe.dir/spe/wrapper.cc.o"
  "CMakeFiles/cosmos_spe.dir/spe/wrapper.cc.o.d"
  "libcosmos_spe.a"
  "libcosmos_spe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_spe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
