# Empty compiler generated dependencies file for cosmos_spe.
# This may be replaced when dependencies are built.
