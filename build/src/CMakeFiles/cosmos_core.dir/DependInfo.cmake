
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/containment.cc" "src/CMakeFiles/cosmos_core.dir/core/containment.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/containment.cc.o.d"
  "/root/repo/src/core/grouping.cc" "src/CMakeFiles/cosmos_core.dir/core/grouping.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/grouping.cc.o.d"
  "/root/repo/src/core/merger.cc" "src/CMakeFiles/cosmos_core.dir/core/merger.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/merger.cc.o.d"
  "/root/repo/src/core/processor.cc" "src/CMakeFiles/cosmos_core.dir/core/processor.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/processor.cc.o.d"
  "/root/repo/src/core/profile_composer.cc" "src/CMakeFiles/cosmos_core.dir/core/profile_composer.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/profile_composer.cc.o.d"
  "/root/repo/src/core/query_distribution.cc" "src/CMakeFiles/cosmos_core.dir/core/query_distribution.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/query_distribution.cc.o.d"
  "/root/repo/src/core/query_group.cc" "src/CMakeFiles/cosmos_core.dir/core/query_group.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/query_group.cc.o.d"
  "/root/repo/src/core/rate_estimator.cc" "src/CMakeFiles/cosmos_core.dir/core/rate_estimator.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/rate_estimator.cc.o.d"
  "/root/repo/src/core/statistics.cc" "src/CMakeFiles/cosmos_core.dir/core/statistics.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/statistics.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/cosmos_core.dir/core/system.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/system.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/CMakeFiles/cosmos_core.dir/core/workload.cc.o" "gcc" "src/CMakeFiles/cosmos_core.dir/core/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_spe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_cbn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
