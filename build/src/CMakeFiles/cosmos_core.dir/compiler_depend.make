# Empty compiler generated dependencies file for cosmos_core.
# This may be replaced when dependencies are built.
