file(REMOVE_RECURSE
  "CMakeFiles/cosmos_core.dir/core/containment.cc.o"
  "CMakeFiles/cosmos_core.dir/core/containment.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/grouping.cc.o"
  "CMakeFiles/cosmos_core.dir/core/grouping.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/merger.cc.o"
  "CMakeFiles/cosmos_core.dir/core/merger.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/processor.cc.o"
  "CMakeFiles/cosmos_core.dir/core/processor.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/profile_composer.cc.o"
  "CMakeFiles/cosmos_core.dir/core/profile_composer.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/query_distribution.cc.o"
  "CMakeFiles/cosmos_core.dir/core/query_distribution.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/query_group.cc.o"
  "CMakeFiles/cosmos_core.dir/core/query_group.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/rate_estimator.cc.o"
  "CMakeFiles/cosmos_core.dir/core/rate_estimator.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/statistics.cc.o"
  "CMakeFiles/cosmos_core.dir/core/statistics.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/system.cc.o"
  "CMakeFiles/cosmos_core.dir/core/system.cc.o.d"
  "CMakeFiles/cosmos_core.dir/core/workload.cc.o"
  "CMakeFiles/cosmos_core.dir/core/workload.cc.o.d"
  "libcosmos_core.a"
  "libcosmos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
