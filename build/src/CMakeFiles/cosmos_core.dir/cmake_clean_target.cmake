file(REMOVE_RECURSE
  "libcosmos_core.a"
)
