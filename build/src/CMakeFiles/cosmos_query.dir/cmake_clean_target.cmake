file(REMOVE_RECURSE
  "libcosmos_query.a"
)
