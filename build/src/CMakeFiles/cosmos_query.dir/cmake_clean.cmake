file(REMOVE_RECURSE
  "CMakeFiles/cosmos_query.dir/query/analyzer.cc.o"
  "CMakeFiles/cosmos_query.dir/query/analyzer.cc.o.d"
  "CMakeFiles/cosmos_query.dir/query/ast.cc.o"
  "CMakeFiles/cosmos_query.dir/query/ast.cc.o.d"
  "CMakeFiles/cosmos_query.dir/query/lexer.cc.o"
  "CMakeFiles/cosmos_query.dir/query/lexer.cc.o.d"
  "CMakeFiles/cosmos_query.dir/query/parser.cc.o"
  "CMakeFiles/cosmos_query.dir/query/parser.cc.o.d"
  "CMakeFiles/cosmos_query.dir/query/unparser.cc.o"
  "CMakeFiles/cosmos_query.dir/query/unparser.cc.o.d"
  "libcosmos_query.a"
  "libcosmos_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
