
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/analyzer.cc" "src/CMakeFiles/cosmos_query.dir/query/analyzer.cc.o" "gcc" "src/CMakeFiles/cosmos_query.dir/query/analyzer.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/cosmos_query.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/cosmos_query.dir/query/ast.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/cosmos_query.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/cosmos_query.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/cosmos_query.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/cosmos_query.dir/query/parser.cc.o.d"
  "/root/repo/src/query/unparser.cc" "src/CMakeFiles/cosmos_query.dir/query/unparser.cc.o" "gcc" "src/CMakeFiles/cosmos_query.dir/query/unparser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
