# Empty dependencies file for cosmos_query.
# This may be replaced when dependencies are built.
