
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/dissemination_tree.cc" "src/CMakeFiles/cosmos_overlay.dir/overlay/dissemination_tree.cc.o" "gcc" "src/CMakeFiles/cosmos_overlay.dir/overlay/dissemination_tree.cc.o.d"
  "/root/repo/src/overlay/graph.cc" "src/CMakeFiles/cosmos_overlay.dir/overlay/graph.cc.o" "gcc" "src/CMakeFiles/cosmos_overlay.dir/overlay/graph.cc.o.d"
  "/root/repo/src/overlay/optimizer.cc" "src/CMakeFiles/cosmos_overlay.dir/overlay/optimizer.cc.o" "gcc" "src/CMakeFiles/cosmos_overlay.dir/overlay/optimizer.cc.o.d"
  "/root/repo/src/overlay/spanning_tree.cc" "src/CMakeFiles/cosmos_overlay.dir/overlay/spanning_tree.cc.o" "gcc" "src/CMakeFiles/cosmos_overlay.dir/overlay/spanning_tree.cc.o.d"
  "/root/repo/src/overlay/topology.cc" "src/CMakeFiles/cosmos_overlay.dir/overlay/topology.cc.o" "gcc" "src/CMakeFiles/cosmos_overlay.dir/overlay/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
