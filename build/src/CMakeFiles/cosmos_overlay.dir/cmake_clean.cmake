file(REMOVE_RECURSE
  "CMakeFiles/cosmos_overlay.dir/overlay/dissemination_tree.cc.o"
  "CMakeFiles/cosmos_overlay.dir/overlay/dissemination_tree.cc.o.d"
  "CMakeFiles/cosmos_overlay.dir/overlay/graph.cc.o"
  "CMakeFiles/cosmos_overlay.dir/overlay/graph.cc.o.d"
  "CMakeFiles/cosmos_overlay.dir/overlay/optimizer.cc.o"
  "CMakeFiles/cosmos_overlay.dir/overlay/optimizer.cc.o.d"
  "CMakeFiles/cosmos_overlay.dir/overlay/spanning_tree.cc.o"
  "CMakeFiles/cosmos_overlay.dir/overlay/spanning_tree.cc.o.d"
  "CMakeFiles/cosmos_overlay.dir/overlay/topology.cc.o"
  "CMakeFiles/cosmos_overlay.dir/overlay/topology.cc.o.d"
  "libcosmos_overlay.a"
  "libcosmos_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
