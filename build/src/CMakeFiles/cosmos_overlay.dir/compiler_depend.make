# Empty compiler generated dependencies file for cosmos_overlay.
# This may be replaced when dependencies are built.
