file(REMOVE_RECURSE
  "libcosmos_overlay.a"
)
