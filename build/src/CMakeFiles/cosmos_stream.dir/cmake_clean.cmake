file(REMOVE_RECURSE
  "CMakeFiles/cosmos_stream.dir/stream/auction_dataset.cc.o"
  "CMakeFiles/cosmos_stream.dir/stream/auction_dataset.cc.o.d"
  "CMakeFiles/cosmos_stream.dir/stream/catalog.cc.o"
  "CMakeFiles/cosmos_stream.dir/stream/catalog.cc.o.d"
  "CMakeFiles/cosmos_stream.dir/stream/generator.cc.o"
  "CMakeFiles/cosmos_stream.dir/stream/generator.cc.o.d"
  "CMakeFiles/cosmos_stream.dir/stream/schema.cc.o"
  "CMakeFiles/cosmos_stream.dir/stream/schema.cc.o.d"
  "CMakeFiles/cosmos_stream.dir/stream/sensor_dataset.cc.o"
  "CMakeFiles/cosmos_stream.dir/stream/sensor_dataset.cc.o.d"
  "CMakeFiles/cosmos_stream.dir/stream/tuple.cc.o"
  "CMakeFiles/cosmos_stream.dir/stream/tuple.cc.o.d"
  "CMakeFiles/cosmos_stream.dir/stream/value.cc.o"
  "CMakeFiles/cosmos_stream.dir/stream/value.cc.o.d"
  "libcosmos_stream.a"
  "libcosmos_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
