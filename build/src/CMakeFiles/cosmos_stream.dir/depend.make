# Empty dependencies file for cosmos_stream.
# This may be replaced when dependencies are built.
