
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/auction_dataset.cc" "src/CMakeFiles/cosmos_stream.dir/stream/auction_dataset.cc.o" "gcc" "src/CMakeFiles/cosmos_stream.dir/stream/auction_dataset.cc.o.d"
  "/root/repo/src/stream/catalog.cc" "src/CMakeFiles/cosmos_stream.dir/stream/catalog.cc.o" "gcc" "src/CMakeFiles/cosmos_stream.dir/stream/catalog.cc.o.d"
  "/root/repo/src/stream/generator.cc" "src/CMakeFiles/cosmos_stream.dir/stream/generator.cc.o" "gcc" "src/CMakeFiles/cosmos_stream.dir/stream/generator.cc.o.d"
  "/root/repo/src/stream/schema.cc" "src/CMakeFiles/cosmos_stream.dir/stream/schema.cc.o" "gcc" "src/CMakeFiles/cosmos_stream.dir/stream/schema.cc.o.d"
  "/root/repo/src/stream/sensor_dataset.cc" "src/CMakeFiles/cosmos_stream.dir/stream/sensor_dataset.cc.o" "gcc" "src/CMakeFiles/cosmos_stream.dir/stream/sensor_dataset.cc.o.d"
  "/root/repo/src/stream/tuple.cc" "src/CMakeFiles/cosmos_stream.dir/stream/tuple.cc.o" "gcc" "src/CMakeFiles/cosmos_stream.dir/stream/tuple.cc.o.d"
  "/root/repo/src/stream/value.cc" "src/CMakeFiles/cosmos_stream.dir/stream/value.cc.o" "gcc" "src/CMakeFiles/cosmos_stream.dir/stream/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
