file(REMOVE_RECURSE
  "libcosmos_stream.a"
)
