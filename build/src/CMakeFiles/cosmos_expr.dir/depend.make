# Empty dependencies file for cosmos_expr.
# This may be replaced when dependencies are built.
