file(REMOVE_RECURSE
  "CMakeFiles/cosmos_expr.dir/expr/conjunct.cc.o"
  "CMakeFiles/cosmos_expr.dir/expr/conjunct.cc.o.d"
  "CMakeFiles/cosmos_expr.dir/expr/evaluator.cc.o"
  "CMakeFiles/cosmos_expr.dir/expr/evaluator.cc.o.d"
  "CMakeFiles/cosmos_expr.dir/expr/expression.cc.o"
  "CMakeFiles/cosmos_expr.dir/expr/expression.cc.o.d"
  "CMakeFiles/cosmos_expr.dir/expr/implication.cc.o"
  "CMakeFiles/cosmos_expr.dir/expr/implication.cc.o.d"
  "CMakeFiles/cosmos_expr.dir/expr/interval.cc.o"
  "CMakeFiles/cosmos_expr.dir/expr/interval.cc.o.d"
  "CMakeFiles/cosmos_expr.dir/expr/relaxation.cc.o"
  "CMakeFiles/cosmos_expr.dir/expr/relaxation.cc.o.d"
  "libcosmos_expr.a"
  "libcosmos_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
