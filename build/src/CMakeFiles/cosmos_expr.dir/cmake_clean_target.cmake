file(REMOVE_RECURSE
  "libcosmos_expr.a"
)
