
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/conjunct.cc" "src/CMakeFiles/cosmos_expr.dir/expr/conjunct.cc.o" "gcc" "src/CMakeFiles/cosmos_expr.dir/expr/conjunct.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/cosmos_expr.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/cosmos_expr.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expression.cc" "src/CMakeFiles/cosmos_expr.dir/expr/expression.cc.o" "gcc" "src/CMakeFiles/cosmos_expr.dir/expr/expression.cc.o.d"
  "/root/repo/src/expr/implication.cc" "src/CMakeFiles/cosmos_expr.dir/expr/implication.cc.o" "gcc" "src/CMakeFiles/cosmos_expr.dir/expr/implication.cc.o.d"
  "/root/repo/src/expr/interval.cc" "src/CMakeFiles/cosmos_expr.dir/expr/interval.cc.o" "gcc" "src/CMakeFiles/cosmos_expr.dir/expr/interval.cc.o.d"
  "/root/repo/src/expr/relaxation.cc" "src/CMakeFiles/cosmos_expr.dir/expr/relaxation.cc.o" "gcc" "src/CMakeFiles/cosmos_expr.dir/expr/relaxation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
