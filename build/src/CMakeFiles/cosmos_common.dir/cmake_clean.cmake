file(REMOVE_RECURSE
  "CMakeFiles/cosmos_common.dir/common/logging.cc.o"
  "CMakeFiles/cosmos_common.dir/common/logging.cc.o.d"
  "CMakeFiles/cosmos_common.dir/common/random.cc.o"
  "CMakeFiles/cosmos_common.dir/common/random.cc.o.d"
  "CMakeFiles/cosmos_common.dir/common/status.cc.o"
  "CMakeFiles/cosmos_common.dir/common/status.cc.o.d"
  "CMakeFiles/cosmos_common.dir/common/string_util.cc.o"
  "CMakeFiles/cosmos_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/cosmos_common.dir/common/zipf.cc.o"
  "CMakeFiles/cosmos_common.dir/common/zipf.cc.o.d"
  "libcosmos_common.a"
  "libcosmos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
