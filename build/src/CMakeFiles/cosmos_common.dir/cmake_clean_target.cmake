file(REMOVE_RECURSE
  "libcosmos_common.a"
)
