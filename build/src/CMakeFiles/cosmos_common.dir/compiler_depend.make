# Empty compiler generated dependencies file for cosmos_common.
# This may be replaced when dependencies are built.
