
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cbn/codec.cc" "src/CMakeFiles/cosmos_cbn.dir/cbn/codec.cc.o" "gcc" "src/CMakeFiles/cosmos_cbn.dir/cbn/codec.cc.o.d"
  "/root/repo/src/cbn/covering.cc" "src/CMakeFiles/cosmos_cbn.dir/cbn/covering.cc.o" "gcc" "src/CMakeFiles/cosmos_cbn.dir/cbn/covering.cc.o.d"
  "/root/repo/src/cbn/datagram.cc" "src/CMakeFiles/cosmos_cbn.dir/cbn/datagram.cc.o" "gcc" "src/CMakeFiles/cosmos_cbn.dir/cbn/datagram.cc.o.d"
  "/root/repo/src/cbn/filter.cc" "src/CMakeFiles/cosmos_cbn.dir/cbn/filter.cc.o" "gcc" "src/CMakeFiles/cosmos_cbn.dir/cbn/filter.cc.o.d"
  "/root/repo/src/cbn/network.cc" "src/CMakeFiles/cosmos_cbn.dir/cbn/network.cc.o" "gcc" "src/CMakeFiles/cosmos_cbn.dir/cbn/network.cc.o.d"
  "/root/repo/src/cbn/profile.cc" "src/CMakeFiles/cosmos_cbn.dir/cbn/profile.cc.o" "gcc" "src/CMakeFiles/cosmos_cbn.dir/cbn/profile.cc.o.d"
  "/root/repo/src/cbn/router.cc" "src/CMakeFiles/cosmos_cbn.dir/cbn/router.cc.o" "gcc" "src/CMakeFiles/cosmos_cbn.dir/cbn/router.cc.o.d"
  "/root/repo/src/cbn/routing_table.cc" "src/CMakeFiles/cosmos_cbn.dir/cbn/routing_table.cc.o" "gcc" "src/CMakeFiles/cosmos_cbn.dir/cbn/routing_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
