# Empty compiler generated dependencies file for cosmos_cbn.
# This may be replaced when dependencies are built.
