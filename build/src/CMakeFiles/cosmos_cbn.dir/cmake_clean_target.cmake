file(REMOVE_RECURSE
  "libcosmos_cbn.a"
)
