file(REMOVE_RECURSE
  "CMakeFiles/cosmos_cbn.dir/cbn/codec.cc.o"
  "CMakeFiles/cosmos_cbn.dir/cbn/codec.cc.o.d"
  "CMakeFiles/cosmos_cbn.dir/cbn/covering.cc.o"
  "CMakeFiles/cosmos_cbn.dir/cbn/covering.cc.o.d"
  "CMakeFiles/cosmos_cbn.dir/cbn/datagram.cc.o"
  "CMakeFiles/cosmos_cbn.dir/cbn/datagram.cc.o.d"
  "CMakeFiles/cosmos_cbn.dir/cbn/filter.cc.o"
  "CMakeFiles/cosmos_cbn.dir/cbn/filter.cc.o.d"
  "CMakeFiles/cosmos_cbn.dir/cbn/network.cc.o"
  "CMakeFiles/cosmos_cbn.dir/cbn/network.cc.o.d"
  "CMakeFiles/cosmos_cbn.dir/cbn/profile.cc.o"
  "CMakeFiles/cosmos_cbn.dir/cbn/profile.cc.o.d"
  "CMakeFiles/cosmos_cbn.dir/cbn/router.cc.o"
  "CMakeFiles/cosmos_cbn.dir/cbn/router.cc.o.d"
  "CMakeFiles/cosmos_cbn.dir/cbn/routing_table.cc.o"
  "CMakeFiles/cosmos_cbn.dir/cbn/routing_table.cc.o.d"
  "libcosmos_cbn.a"
  "libcosmos_cbn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmos_cbn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
