
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_projection.cc" "bench/CMakeFiles/bench_ablation_projection.dir/bench_ablation_projection.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_projection.dir/bench_ablation_projection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_spe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_cbn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
