# Empty compiler generated dependencies file for bench_fig3_result_delivery.
# This may be replaced when dependencies are built.
