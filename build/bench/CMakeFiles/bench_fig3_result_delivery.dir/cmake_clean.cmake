file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_result_delivery.dir/bench_fig3_result_delivery.cc.o"
  "CMakeFiles/bench_fig3_result_delivery.dir/bench_fig3_result_delivery.cc.o.d"
  "bench_fig3_result_delivery"
  "bench_fig3_result_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_result_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
