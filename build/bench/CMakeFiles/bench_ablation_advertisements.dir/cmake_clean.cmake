file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_advertisements.dir/bench_ablation_advertisements.cc.o"
  "CMakeFiles/bench_ablation_advertisements.dir/bench_ablation_advertisements.cc.o.d"
  "bench_ablation_advertisements"
  "bench_ablation_advertisements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_advertisements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
