# Empty dependencies file for bench_ablation_advertisements.
# This may be replaced when dependencies are built.
