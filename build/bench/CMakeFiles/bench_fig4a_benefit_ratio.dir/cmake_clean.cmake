file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_benefit_ratio.dir/bench_fig4a_benefit_ratio.cc.o"
  "CMakeFiles/bench_fig4a_benefit_ratio.dir/bench_fig4a_benefit_ratio.cc.o.d"
  "bench_fig4a_benefit_ratio"
  "bench_fig4a_benefit_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_benefit_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
