# Empty compiler generated dependencies file for bench_fig4a_benefit_ratio.
# This may be replaced when dependencies are built.
