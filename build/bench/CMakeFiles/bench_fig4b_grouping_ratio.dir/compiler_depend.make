# Empty compiler generated dependencies file for bench_fig4b_grouping_ratio.
# This may be replaced when dependencies are built.
