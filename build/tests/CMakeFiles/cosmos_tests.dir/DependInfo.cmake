
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analyzer.cc" "tests/CMakeFiles/cosmos_tests.dir/test_analyzer.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_analyzer.cc.o.d"
  "/root/repo/tests/test_catalog.cc" "tests/CMakeFiles/cosmos_tests.dir/test_catalog.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_catalog.cc.o.d"
  "/root/repo/tests/test_cbn_network.cc" "tests/CMakeFiles/cosmos_tests.dir/test_cbn_network.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_cbn_network.cc.o.d"
  "/root/repo/tests/test_churn.cc" "tests/CMakeFiles/cosmos_tests.dir/test_churn.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_churn.cc.o.d"
  "/root/repo/tests/test_codec.cc" "tests/CMakeFiles/cosmos_tests.dir/test_codec.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_codec.cc.o.d"
  "/root/repo/tests/test_conjunct.cc" "tests/CMakeFiles/cosmos_tests.dir/test_conjunct.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_conjunct.cc.o.d"
  "/root/repo/tests/test_containment.cc" "tests/CMakeFiles/cosmos_tests.dir/test_containment.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_containment.cc.o.d"
  "/root/repo/tests/test_covering.cc" "tests/CMakeFiles/cosmos_tests.dir/test_covering.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_covering.cc.o.d"
  "/root/repo/tests/test_datasets.cc" "tests/CMakeFiles/cosmos_tests.dir/test_datasets.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_datasets.cc.o.d"
  "/root/repo/tests/test_distribution.cc" "tests/CMakeFiles/cosmos_tests.dir/test_distribution.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_distribution.cc.o.d"
  "/root/repo/tests/test_expression.cc" "tests/CMakeFiles/cosmos_tests.dir/test_expression.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_expression.cc.o.d"
  "/root/repo/tests/test_failover.cc" "tests/CMakeFiles/cosmos_tests.dir/test_failover.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_failover.cc.o.d"
  "/root/repo/tests/test_fault_tolerance.cc" "tests/CMakeFiles/cosmos_tests.dir/test_fault_tolerance.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_fault_tolerance.cc.o.d"
  "/root/repo/tests/test_filter_profile.cc" "tests/CMakeFiles/cosmos_tests.dir/test_filter_profile.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_filter_profile.cc.o.d"
  "/root/repo/tests/test_grand_integration.cc" "tests/CMakeFiles/cosmos_tests.dir/test_grand_integration.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_grand_integration.cc.o.d"
  "/root/repo/tests/test_grouping.cc" "tests/CMakeFiles/cosmos_tests.dir/test_grouping.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_grouping.cc.o.d"
  "/root/repo/tests/test_implication.cc" "tests/CMakeFiles/cosmos_tests.dir/test_implication.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_implication.cc.o.d"
  "/root/repo/tests/test_integration_merge.cc" "tests/CMakeFiles/cosmos_tests.dir/test_integration_merge.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_integration_merge.cc.o.d"
  "/root/repo/tests/test_interval.cc" "tests/CMakeFiles/cosmos_tests.dir/test_interval.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_interval.cc.o.d"
  "/root/repo/tests/test_lexer.cc" "tests/CMakeFiles/cosmos_tests.dir/test_lexer.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_lexer.cc.o.d"
  "/root/repo/tests/test_merger.cc" "tests/CMakeFiles/cosmos_tests.dir/test_merger.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_merger.cc.o.d"
  "/root/repo/tests/test_multiprocessor.cc" "tests/CMakeFiles/cosmos_tests.dir/test_multiprocessor.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_multiprocessor.cc.o.d"
  "/root/repo/tests/test_multiway_join.cc" "tests/CMakeFiles/cosmos_tests.dir/test_multiway_join.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_multiway_join.cc.o.d"
  "/root/repo/tests/test_optimizer.cc" "tests/CMakeFiles/cosmos_tests.dir/test_optimizer.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_optimizer.cc.o.d"
  "/root/repo/tests/test_overlay.cc" "tests/CMakeFiles/cosmos_tests.dir/test_overlay.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_overlay.cc.o.d"
  "/root/repo/tests/test_parser.cc" "tests/CMakeFiles/cosmos_tests.dir/test_parser.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_parser.cc.o.d"
  "/root/repo/tests/test_presentation.cc" "tests/CMakeFiles/cosmos_tests.dir/test_presentation.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_presentation.cc.o.d"
  "/root/repo/tests/test_processor.cc" "tests/CMakeFiles/cosmos_tests.dir/test_processor.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_processor.cc.o.d"
  "/root/repo/tests/test_profile_composer.cc" "tests/CMakeFiles/cosmos_tests.dir/test_profile_composer.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_profile_composer.cc.o.d"
  "/root/repo/tests/test_profile_dnf.cc" "tests/CMakeFiles/cosmos_tests.dir/test_profile_dnf.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_profile_dnf.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/cosmos_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_rate_estimator.cc" "tests/CMakeFiles/cosmos_tests.dir/test_rate_estimator.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_rate_estimator.cc.o.d"
  "/root/repo/tests/test_relaxation.cc" "tests/CMakeFiles/cosmos_tests.dir/test_relaxation.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_relaxation.cc.o.d"
  "/root/repo/tests/test_roundtrip_property.cc" "tests/CMakeFiles/cosmos_tests.dir/test_roundtrip_property.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_roundtrip_property.cc.o.d"
  "/root/repo/tests/test_routing_table.cc" "tests/CMakeFiles/cosmos_tests.dir/test_routing_table.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_routing_table.cc.o.d"
  "/root/repo/tests/test_schema_tuple.cc" "tests/CMakeFiles/cosmos_tests.dir/test_schema_tuple.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_schema_tuple.cc.o.d"
  "/root/repo/tests/test_selftune.cc" "tests/CMakeFiles/cosmos_tests.dir/test_selftune.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_selftune.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/cosmos_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_simulated_system.cc" "tests/CMakeFiles/cosmos_tests.dir/test_simulated_system.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_simulated_system.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/cosmos_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_spe_aggregate.cc" "tests/CMakeFiles/cosmos_tests.dir/test_spe_aggregate.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_spe_aggregate.cc.o.d"
  "/root/repo/tests/test_spe_join.cc" "tests/CMakeFiles/cosmos_tests.dir/test_spe_join.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_spe_join.cc.o.d"
  "/root/repo/tests/test_spe_operators.cc" "tests/CMakeFiles/cosmos_tests.dir/test_spe_operators.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_spe_operators.cc.o.d"
  "/root/repo/tests/test_spe_plan.cc" "tests/CMakeFiles/cosmos_tests.dir/test_spe_plan.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_spe_plan.cc.o.d"
  "/root/repo/tests/test_splittable.cc" "tests/CMakeFiles/cosmos_tests.dir/test_splittable.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_splittable.cc.o.d"
  "/root/repo/tests/test_statistics.cc" "tests/CMakeFiles/cosmos_tests.dir/test_statistics.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_statistics.cc.o.d"
  "/root/repo/tests/test_status.cc" "tests/CMakeFiles/cosmos_tests.dir/test_status.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_status.cc.o.d"
  "/root/repo/tests/test_string_util.cc" "tests/CMakeFiles/cosmos_tests.dir/test_string_util.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_string_util.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/cosmos_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_system_options.cc" "tests/CMakeFiles/cosmos_tests.dir/test_system_options.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_system_options.cc.o.d"
  "/root/repo/tests/test_time.cc" "tests/CMakeFiles/cosmos_tests.dir/test_time.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_time.cc.o.d"
  "/root/repo/tests/test_unparser.cc" "tests/CMakeFiles/cosmos_tests.dir/test_unparser.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_unparser.cc.o.d"
  "/root/repo/tests/test_value.cc" "tests/CMakeFiles/cosmos_tests.dir/test_value.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_value.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/cosmos_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_workload.cc.o.d"
  "/root/repo/tests/test_zipf.cc" "tests/CMakeFiles/cosmos_tests.dir/test_zipf.cc.o" "gcc" "tests/CMakeFiles/cosmos_tests.dir/test_zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cosmos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_spe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_cbn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cosmos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
