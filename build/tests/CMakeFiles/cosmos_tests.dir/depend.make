# Empty dependencies file for cosmos_tests.
# This may be replaced when dependencies are built.
